package xsdtypes

import (
	"testing"

	"repro/internal/xsdregex"
)

// accept asserts that the named builtin accepts the lexical value.
func accept(t *testing.T, typeName, lexical string) Value {
	t.Helper()
	b := MustLookup(typeName)
	v, err := b.Parse(lexical)
	if err != nil {
		t.Errorf("%s should accept %q: %v", typeName, lexical, err)
	}
	return v
}

// reject asserts that the named builtin rejects the lexical value.
func reject(t *testing.T, typeName, lexical string) {
	t.Helper()
	b := MustLookup(typeName)
	if _, err := b.Parse(lexical); err == nil {
		t.Errorf("%s should reject %q", typeName, lexical)
	}
}

func TestAllBuiltinsRegistered(t *testing.T) {
	// The 19 primitives + 25 derived + anySimpleType = 45 names.
	want := []string{
		"anySimpleType",
		"string", "boolean", "decimal", "float", "double", "duration",
		"dateTime", "time", "date", "gYearMonth", "gYear", "gMonthDay",
		"gDay", "gMonth", "hexBinary", "base64Binary", "anyURI", "QName",
		"NOTATION",
		"normalizedString", "token", "language", "NMTOKEN", "NMTOKENS",
		"Name", "NCName", "ID", "IDREF", "IDREFS", "ENTITY", "ENTITIES",
		"integer", "nonPositiveInteger", "negativeInteger", "long", "int",
		"short", "byte", "nonNegativeInteger", "unsignedLong",
		"unsignedInt", "unsignedShort", "unsignedByte", "positiveInteger",
	}
	for _, n := range want {
		if _, ok := Lookup(n); !ok {
			t.Errorf("builtin %q missing", n)
		}
	}
	if got := len(Names()); got != len(want) {
		t.Errorf("registered %d builtins, want %d", got, len(want))
	}
}

func TestBooleans(t *testing.T) {
	for _, s := range []string{"true", "false", "1", "0", " true "} {
		accept(t, "boolean", s)
	}
	for _, s := range []string{"TRUE", "yes", "", "2"} {
		reject(t, "boolean", s)
	}
	if v := accept(t, "boolean", "1"); !v.Bool {
		t.Error("boolean 1 should be true")
	}
}

func TestDecimals(t *testing.T) {
	accept(t, "decimal", "148.95")
	accept(t, "decimal", "-0.5")
	accept(t, "decimal", "+007")
	accept(t, "decimal", ".5")
	accept(t, "decimal", "5.")
	reject(t, "decimal", "")
	reject(t, "decimal", ".")
	reject(t, "decimal", "1e5")
	reject(t, "decimal", "1,5")
	if v := accept(t, "decimal", "-00.50"); v.Dec.String() != "-0.5" {
		t.Errorf("canonical: %s", v.Dec)
	}
}

func TestDecimalOrdering(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1}, {"2", "1", 1}, {"1.0", "1", 0},
		{"-1", "1", -1}, {"-2", "-1", -1}, {"0", "-0", 0},
		{"10", "9", 1}, {"0.5", "0.49", 1}, {"123456789012345678901234567890", "123456789012345678901234567891", -1},
		{"0.1", "0.10", 0}, {"-0.5", "-0.4", -1},
	}
	for _, c := range cases {
		got := MustDecimal(c.a).Cmp(MustDecimal(c.b))
		if got != c.want {
			t.Errorf("Cmp(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntegerTower(t *testing.T) {
	accept(t, "integer", "-42")
	reject(t, "integer", "1.0") // integer lexical space has no '.'
	reject(t, "integer", "1e3")

	accept(t, "positiveInteger", "1")
	reject(t, "positiveInteger", "0")
	reject(t, "positiveInteger", "-1")

	accept(t, "nonNegativeInteger", "0")
	reject(t, "nonNegativeInteger", "-1")

	accept(t, "negativeInteger", "-1")
	reject(t, "negativeInteger", "0")

	accept(t, "byte", "127")
	reject(t, "byte", "128")
	accept(t, "byte", "-128")
	reject(t, "byte", "-129")

	accept(t, "unsignedByte", "255")
	reject(t, "unsignedByte", "256")
	reject(t, "unsignedByte", "-1")

	accept(t, "long", "9223372036854775807")
	reject(t, "long", "9223372036854775808")
	accept(t, "long", "-9223372036854775808")
	reject(t, "long", "-9223372036854775809")

	accept(t, "unsignedLong", "18446744073709551615")
	reject(t, "unsignedLong", "18446744073709551616")

	accept(t, "int", "2147483647")
	reject(t, "int", "2147483648")
	accept(t, "short", "-32768")
	reject(t, "short", "32768")
}

func TestFloats(t *testing.T) {
	accept(t, "float", "1.5E4")
	accept(t, "double", "-1.5e-4")
	accept(t, "double", "INF")
	accept(t, "double", "-INF")
	accept(t, "double", "NaN")
	reject(t, "double", "Infinity")
	reject(t, "double", "0x1p3")
	reject(t, "double", "nan")
	reject(t, "double", "")
}

func TestStringsAndWhitespace(t *testing.T) {
	// string preserves whitespace.
	if v := accept(t, "string", "  a\tb  "); v.Str != "  a\tb  " {
		t.Errorf("string preserve: %q", v.Str)
	}
	// normalizedString replaces tabs/newlines with spaces.
	if v := accept(t, "normalizedString", "a\tb\nc"); v.Str != "a b c" {
		t.Errorf("replace: %q", v.Str)
	}
	// token collapses.
	if v := accept(t, "token", "  a \t b  "); v.Str != "a b" {
		t.Errorf("collapse: %q", v.Str)
	}
}

func TestNamesAndTokens(t *testing.T) {
	accept(t, "Name", "po:name")
	accept(t, "NCName", "name")
	reject(t, "NCName", "po:name")
	reject(t, "Name", "9name")
	accept(t, "NMTOKEN", "926-AA")
	reject(t, "NMTOKEN", "a b")
	accept(t, "ID", "id-1")
	accept(t, "language", "en")
	accept(t, "language", "en-US")
	reject(t, "language", "verylonglanguagetag") // >8 chars in one subtag
	reject(t, "language", "en_US")
}

func TestListTypes(t *testing.T) {
	v := accept(t, "NMTOKENS", " one two\tthree ")
	if len(v.Items) != 3 || v.Items[1].Str != "two" {
		t.Errorf("NMTOKENS items: %+v", v.Items)
	}
	reject(t, "NMTOKENS", "") // minLength 1
	reject(t, "NMTOKENS", "ok bad token?")
	accept(t, "IDREFS", "a b")
	accept(t, "ENTITIES", "e1")
}

func TestDates(t *testing.T) {
	accept(t, "date", "1999-05-21")
	accept(t, "date", "1999-05-21Z")
	accept(t, "date", "1999-05-21+05:30")
	accept(t, "date", "-0045-01-01") // 45 BC
	reject(t, "date", "1999-13-01")
	reject(t, "date", "1999-02-29") // not a leap year
	accept(t, "date", "2000-02-29") // leap year
	reject(t, "date", "99-05-21")
	reject(t, "date", "1999-5-21")
	reject(t, "date", "0000-01-01")
}

func TestDateTimes(t *testing.T) {
	accept(t, "dateTime", "1999-05-31T13:20:00")
	accept(t, "dateTime", "1999-05-31T13:20:00.5-05:00")
	accept(t, "dateTime", "1999-05-31T24:00:00") // first instant of next day
	reject(t, "dateTime", "1999-05-31T24:00:01")
	reject(t, "dateTime", "1999-05-31 13:20:00")
	reject(t, "dateTime", "1999-05-31T25:00:00")
	reject(t, "dateTime", "1999-05-31T13:61:00")
}

func TestTimes(t *testing.T) {
	accept(t, "time", "13:20:00")
	accept(t, "time", "13:20:00.123456789Z")
	reject(t, "time", "1:20:00")
	reject(t, "time", "13:20")
}

func TestGregorians(t *testing.T) {
	accept(t, "gYear", "1999")
	accept(t, "gYear", "-0044")
	accept(t, "gYear", "12000")
	reject(t, "gYear", "99")
	accept(t, "gYearMonth", "1999-05")
	reject(t, "gYearMonth", "1999-13")
	accept(t, "gMonthDay", "--05-21")
	accept(t, "gMonthDay", "--02-29") // leap-capable reference year
	reject(t, "gMonthDay", "--02-30")
	accept(t, "gDay", "---21")
	reject(t, "gDay", "---32")
	accept(t, "gMonth", "--05")
	reject(t, "gMonth", "--00")
}

func TestTemporalOrdering(t *testing.T) {
	b := MustLookup("dateTime")
	early, _ := b.Parse("1999-05-31T13:20:00Z")
	late, _ := b.Parse("1999-05-31T14:20:00Z")
	// +01:00 offset makes the second equal to the first.
	shifted, _ := b.Parse("1999-05-31T14:20:00+01:00")
	if c, _ := Compare(early, late); c != -1 {
		t.Error("early < late expected")
	}
	if c, _ := Compare(early, shifted); c != 0 {
		t.Error("timezone normalization failed")
	}
	d := MustLookup("date")
	a, _ := d.Parse("1999-05-21")
	bb, _ := d.Parse("1999-05-22")
	if c, _ := Compare(a, bb); c != -1 {
		t.Error("date ordering failed")
	}
}

func TestDurations(t *testing.T) {
	accept(t, "duration", "P1Y2M3DT4H5M6S")
	accept(t, "duration", "PT0.5S")
	accept(t, "duration", "-P30D")
	accept(t, "duration", "P1M")
	accept(t, "duration", "PT1M")
	reject(t, "duration", "P")
	reject(t, "duration", "PT")
	reject(t, "duration", "1Y")
	reject(t, "duration", "P1.5Y")
	reject(t, "duration", "P1S")

	b := MustLookup("duration")
	short, _ := b.Parse("P29D")
	month, _ := b.Parse("P1M")
	if c, _ := Compare(short, month); c != -1 {
		t.Error("P29D < P1M expected under the approximate order")
	}
}

func TestBinaries(t *testing.T) {
	v := accept(t, "hexBinary", "0fB7")
	if len(v.Bytes) != 2 || v.Bytes[0] != 0x0f || v.Bytes[1] != 0xb7 {
		t.Errorf("hexBinary bytes: %v", v.Bytes)
	}
	reject(t, "hexBinary", "0fB")
	reject(t, "hexBinary", "0g")
	v = accept(t, "base64Binary", "aGVsbG8=")
	if string(v.Bytes) != "hello" {
		t.Errorf("base64: %q", v.Bytes)
	}
	reject(t, "base64Binary", "a===")
}

func TestQNames(t *testing.T) {
	accept(t, "QName", "po:item")
	accept(t, "QName", "item")
	reject(t, "QName", ":item")
	reject(t, "QName", "a:b:c")
	reject(t, "QName", "1a")
}

func TestDerivesFrom(t *testing.T) {
	pos := MustLookup("positiveInteger")
	for _, anc := range []string{"nonNegativeInteger", "integer", "decimal", "anySimpleType"} {
		if !pos.DerivesFrom(MustLookup(anc)) {
			t.Errorf("positiveInteger should derive from %s", anc)
		}
	}
	if pos.DerivesFrom(MustLookup("string")) {
		t.Error("positiveInteger must not derive from string")
	}
	if pos.Primitive() != MustLookup("decimal") {
		t.Errorf("primitive of positiveInteger: %s", pos.Primitive().Name)
	}
}

func TestFacetCheckDirect(t *testing.T) {
	// The paper's quantity type: positiveInteger with maxExclusive 100.
	f := Facets{MaxExclusive: decVal("100")}
	v, _ := MustLookup("positiveInteger").Parse("99")
	if err := f.Check(v, "99"); err != nil {
		t.Errorf("99 should pass: %v", err)
	}
	v, _ = MustLookup("positiveInteger").Parse("100")
	if err := f.Check(v, "100"); err == nil {
		t.Error("100 should fail maxExclusive 100")
	}
}

func TestEnumerationFacet(t *testing.T) {
	us := Value{Kind: VString, Str: "US"}
	de := Value{Kind: VString, Str: "DE"}
	f := Facets{Enumeration: []Value{us, de}}
	if err := f.Check(Value{Kind: VString, Str: "US"}, "US"); err != nil {
		t.Errorf("US should pass: %v", err)
	}
	if err := f.Check(Value{Kind: VString, Str: "FR"}, "FR"); err == nil {
		t.Error("FR should fail enumeration")
	}
}

func TestLengthFacets(t *testing.T) {
	f := Facets{MinLength: intPtr(2), MaxLength: intPtr(4)}
	check := func(s string) error { return f.Check(Value{Kind: VString, Str: s}, s) }
	if err := check("ab"); err != nil {
		t.Errorf("min boundary: %v", err)
	}
	if err := check("abcd"); err != nil {
		t.Errorf("max boundary: %v", err)
	}
	if check("a") == nil || check("abcde") == nil {
		t.Error("length bounds not enforced")
	}
	// Length counts runes, not bytes.
	g := Facets{Length: intPtr(2)}
	if err := g.Check(Value{Kind: VString, Str: "éü"}, "éü"); err != nil {
		t.Errorf("rune length: %v", err)
	}
}

func TestTotalAndFractionDigits(t *testing.T) {
	f := Facets{TotalDigits: intPtr(5), FractionDigits: intPtr(2)}
	ok, _ := ParseDecimal("123.45")
	if err := f.Check(Value{Kind: VDecimal, Dec: ok}, "123.45"); err != nil {
		t.Errorf("123.45: %v", err)
	}
	bad1, _ := ParseDecimal("1234.56")
	if f.Check(Value{Kind: VDecimal, Dec: bad1}, "1234.56") == nil {
		t.Error("totalDigits not enforced")
	}
	bad2, _ := ParseDecimal("1.234")
	if f.Check(Value{Kind: VDecimal, Dec: bad2}, "1.234") == nil {
		t.Error("fractionDigits not enforced")
	}
}

func TestInt64Conversion(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"-1", -1, true},
		{"9223372036854775807", 9223372036854775807, true},
		{"-9223372036854775808", -9223372036854775808, true},
		{"9223372036854775808", 0, false},
		{"-9223372036854775809", 0, false},
	}
	for _, c := range cases {
		d := MustDecimal(c.in)
		got, err := d.Int64()
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Int64(%s) = %d, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Int64(%s) should overflow", c.in)
		}
	}
}

func TestValueStringRoundTrip(t *testing.T) {
	// Canonical forms must reparse to equal values.
	cases := []struct{ typ, lex string }{
		{"decimal", "-1.50"},
		{"dateTime", "1999-05-21T04:05:06Z"},
		{"date", "1999-05-21"},
		{"duration", "P1Y2M3DT4H5M6S"},
		{"hexBinary", "DEADBEEF"},
		{"base64Binary", "aGVsbG8="},
		{"boolean", "1"},
	}
	for _, c := range cases {
		b := MustLookup(c.typ)
		v1, err := b.Parse(c.lex)
		if err != nil {
			t.Fatalf("%s %q: %v", c.typ, c.lex, err)
		}
		v2, err := b.Parse(v1.String())
		if err != nil {
			t.Fatalf("%s canonical %q: %v", c.typ, v1.String(), err)
		}
		if !v1.Equal(v2) {
			t.Errorf("%s: %q -> %q not value-equal", c.typ, c.lex, v1.String())
		}
	}
}

func TestSKUPatternViaFacet(t *testing.T) {
	// The paper's SKU simple type: string restricted by \d{3}-[A-Z]{2}.
	re, err := xsdregex.Compile(`\d{3}-[A-Z]{2}`)
	if err != nil {
		t.Fatal(err)
	}
	f := Facets{Patterns: []*xsdregex.Regexp{re}}
	if err := f.Check(Value{Kind: VString, Str: "926-AA"}, "926-AA"); err != nil {
		t.Errorf("926-AA should match SKU: %v", err)
	}
	if f.Check(Value{Kind: VString, Str: "926-aa"}, "926-aa") == nil {
		t.Error("926-aa should fail SKU")
	}
}

func TestAnyURI(t *testing.T) {
	accept(t, "anyURI", "http://example.com/a?b=c#d")
	accept(t, "anyURI", "relative/path")
	accept(t, "anyURI", "")
}

func TestCompareErrors(t *testing.T) {
	a := Value{Kind: VBool, Bool: true}
	b := Value{Kind: VBool, Bool: false}
	if _, err := Compare(a, b); err == nil {
		t.Error("booleans must be unordered")
	}
	c := Value{Kind: VDecimal, Dec: MustDecimal("1")}
	if _, err := Compare(a, c); err == nil {
		t.Error("cross-kind comparison must error")
	}
}
