package xsdtypes

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// randDecimal builds an arbitrary decimal lexical form from raw bytes.
func randDecimal(r *rand.Rand) string {
	sign := [3]string{"", "+", "-"}[r.Intn(3)]
	intLen := r.Intn(20)
	fracLen := r.Intn(20)
	if intLen == 0 && fracLen == 0 {
		intLen = 1
	}
	digits := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('0' + r.Intn(10))
		}
		return string(b)
	}
	s := sign + digits(intLen)
	if fracLen > 0 {
		s += "." + digits(fracLen)
	}
	return s
}

// TestQuickDecimalRoundTrip: parse -> canonical -> parse is the identity
// in the value space.
func TestQuickDecimalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		lex := randDecimal(r)
		d, err := ParseDecimal(lex)
		if err != nil {
			return false
		}
		d2, err := ParseDecimal(d.String())
		if err != nil {
			return false
		}
		return d.Cmp(d2) == 0 && d.String() == d2.String()
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatalf("round trip failed (iteration %d)", i)
		}
	}
}

// TestQuickDecimalOrderTotal: Cmp is antisymmetric and transitive on
// random triples.
func TestQuickDecimalOrderTotal(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := MustDecimal(randDecimal(r))
		b := MustDecimal(randDecimal(r))
		c := MustDecimal(randDecimal(r))
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("antisymmetry: %s vs %s", a, b)
		}
		if a.Cmp(b) <= 0 && b.Cmp(c) <= 0 && a.Cmp(c) > 0 {
			t.Fatalf("transitivity: %s <= %s <= %s but %s > %s", a, b, c, a, c)
		}
		if a.Cmp(a) != 0 {
			t.Fatalf("reflexivity: %s", a)
		}
	}
}

// TestQuickDecimalAgainstFloat: for short decimals, ordering agrees with
// float64 arithmetic.
func TestQuickDecimalAgainstFloat(t *testing.T) {
	f := func(x, y int32) bool {
		a := DecimalFromInt64(int64(x))
		b := DecimalFromInt64(int64(y))
		want := 0
		if x < y {
			want = -1
		} else if x > y {
			want = 1
		}
		return a.Cmp(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInt64RoundTrip: DecimalFromInt64 -> Int64 is the identity.
func TestQuickInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecimalFromInt64(v).Int64()
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWhitespaceIdempotent: applying a whitespace mode twice equals
// applying it once.
func TestQuickWhitespaceIdempotent(t *testing.T) {
	f := func(raw []byte) bool {
		s := string(raw)
		if !utf8.ValidString(s) {
			return true // XML content is always valid UTF-8
		}
		for _, ws := range []WhiteSpace{WSPreserve, WSReplace, WSCollapse} {
			once := ApplyWhiteSpace(ws, s)
			if ApplyWhiteSpace(ws, once) != once {
				return false
			}
		}
		// Collapse of replace equals collapse.
		return ApplyWhiteSpace(WSCollapse, ApplyWhiteSpace(WSReplace, s)) == ApplyWhiteSpace(WSCollapse, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDateTimeRoundTrip: canonical form reparses equal for random
// valid dates.
func TestQuickDateTimeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := MustLookup("dateTime")
	for i := 0; i < 1500; i++ {
		year := 1 + r.Intn(4000)
		month := 1 + r.Intn(12)
		day := 1 + r.Intn(daysInMonth(year, month))
		lex := fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02d", year, month, day, r.Intn(24), r.Intn(60), r.Intn(60))
		if r.Intn(2) == 0 {
			lex += "Z"
		}
		v1, err := b.Parse(lex)
		if err != nil {
			t.Fatalf("%s: %v", lex, err)
		}
		v2, err := b.Parse(v1.String())
		if err != nil {
			t.Fatalf("canonical %q: %v", v1.String(), err)
		}
		if !v1.Equal(v2) {
			t.Fatalf("%s -> %s not equal", lex, v1.String())
		}
	}
}

// TestQuickTimelineMonotonic: adding a day moves the timeline forward.
func TestQuickTimelineMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := MustLookup("date")
	for i := 0; i < 1500; i++ {
		year := 1 + r.Intn(3000)
		month := 1 + r.Intn(12)
		day := 1 + r.Intn(daysInMonth(year, month)-1)
		a, _ := d.Parse(fmt.Sprintf("%04d-%02d-%02d", year, month, day))
		b, _ := d.Parse(fmt.Sprintf("%04d-%02d-%02d", year, month, day+1))
		if c, _ := Compare(a, b); c != -1 {
			t.Fatalf("%v should precede %v", a, b)
		}
	}
}

// TestQuickHexBinaryRoundTrip: bytes -> canonical hex -> bytes.
func TestQuickHexBinaryRoundTrip(t *testing.T) {
	b := MustLookup("hexBinary")
	f := func(data []byte) bool {
		v := Value{Kind: VHexBinary, Bytes: data}
		parsed, err := b.Parse(v.String())
		return err == nil && parsed.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
