package xsdtypes

import (
	"fmt"
	"unicode/utf8"

	"repro/internal/xsdregex"
)

// Facets is one derivation step's worth of constraining facets. Within a
// step, multiple patterns are ORed; across steps every step must hold
// (both per XML Schema Part 2 §4.3).
type Facets struct {
	Length    *int
	MinLength *int
	MaxLength *int

	TotalDigits    *int
	FractionDigits *int

	Patterns []*xsdregex.Regexp

	// Enumeration lists the admitted values (value-space comparison).
	Enumeration []Value

	MinInclusive *Value
	MaxInclusive *Value
	MinExclusive *Value
	MaxExclusive *Value

	// WhiteSpace overrides the inherited whitespace mode when non-nil.
	WhiteSpace *WhiteSpace
}

// IsEmpty reports whether no facet is set.
func (f *Facets) IsEmpty() bool {
	return f.Length == nil && f.MinLength == nil && f.MaxLength == nil &&
		f.TotalDigits == nil && f.FractionDigits == nil &&
		len(f.Patterns) == 0 && len(f.Enumeration) == 0 &&
		f.MinInclusive == nil && f.MaxInclusive == nil &&
		f.MinExclusive == nil && f.MaxExclusive == nil && f.WhiteSpace == nil
}

// valueLength returns the facet-relevant length of a value: runes for
// strings, octets for binaries, items for lists.
func valueLength(v Value) (int, bool) {
	switch v.Kind {
	case VString, VAnyURI:
		return utf8.RuneCountInString(v.Str), true
	case VHexBinary, VBase64Binary:
		return len(v.Bytes), true
	case VList:
		return len(v.Items), true
	}
	return 0, false
}

// Check verifies the value (with its whitespace-normalized lexical form)
// against this facet step.
func (f *Facets) Check(v Value, lexical string) error {
	if n, ok := valueLength(v); ok {
		if f.Length != nil && n != *f.Length {
			return fmt.Errorf("length is %d, must be exactly %d", n, *f.Length)
		}
		if f.MinLength != nil && n < *f.MinLength {
			return fmt.Errorf("length is %d, must be at least %d", n, *f.MinLength)
		}
		if f.MaxLength != nil && n > *f.MaxLength {
			return fmt.Errorf("length is %d, must be at most %d", n, *f.MaxLength)
		}
	}
	if v.Kind == VDecimal {
		if f.TotalDigits != nil && v.Dec.TotalDigits() > *f.TotalDigits {
			return fmt.Errorf("value %s has more than %d total digits", v.Dec, *f.TotalDigits)
		}
		if f.FractionDigits != nil && v.Dec.FractionDigits() > *f.FractionDigits {
			return fmt.Errorf("value %s has more than %d fraction digits", v.Dec, *f.FractionDigits)
		}
	}
	if len(f.Patterns) > 0 {
		ok := false
		for _, p := range f.Patterns {
			if p.MatchString(lexical) {
				ok = true
				break
			}
		}
		if !ok {
			if len(f.Patterns) == 1 {
				return fmt.Errorf("value %q does not match pattern %q", lexical, f.Patterns[0].String())
			}
			return fmt.Errorf("value %q matches none of the %d patterns", lexical, len(f.Patterns))
		}
	}
	if len(f.Enumeration) > 0 {
		ok := false
		for _, e := range f.Enumeration {
			if v.Equal(e) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("value %q is not one of the enumerated values", lexical)
		}
	}
	if f.MinInclusive != nil {
		if c, err := Compare(v, *f.MinInclusive); err != nil || c < 0 {
			return boundErr(err, lexical, ">=", f.MinInclusive)
		}
	}
	if f.MaxInclusive != nil {
		if c, err := Compare(v, *f.MaxInclusive); err != nil || c > 0 {
			return boundErr(err, lexical, "<=", f.MaxInclusive)
		}
	}
	if f.MinExclusive != nil {
		if c, err := Compare(v, *f.MinExclusive); err != nil || c <= 0 {
			return boundErr(err, lexical, ">", f.MinExclusive)
		}
	}
	if f.MaxExclusive != nil {
		if c, err := Compare(v, *f.MaxExclusive); err != nil || c >= 0 {
			return boundErr(err, lexical, "<", f.MaxExclusive)
		}
	}
	return nil
}

func boundErr(err error, lexical, op string, bound *Value) error {
	if err != nil {
		return fmt.Errorf("value %q cannot be range-checked: %v", lexical, err)
	}
	return fmt.Errorf("value %q must be %s %s", lexical, op, bound.String())
}
