package xsdtypes

import (
	"math"
	"testing"
)

func TestGregorianOrdering(t *testing.T) {
	ym := MustLookup("gYearMonth")
	a, _ := ym.Parse("1999-05")
	b, _ := ym.Parse("1999-06")
	if c, _ := Compare(a, b); c != -1 {
		t.Error("gYearMonth ordering")
	}
	gm := MustLookup("gMonth")
	m1, _ := gm.Parse("--05")
	m2, _ := gm.Parse("--11")
	if c, _ := Compare(m1, m2); c != -1 {
		t.Error("gMonth ordering")
	}
	gd := MustLookup("gDay")
	d1, _ := gd.Parse("---02")
	d2, _ := gd.Parse("---28")
	if c, _ := Compare(d1, d2); c != -1 {
		t.Error("gDay ordering")
	}
}

func TestNegativeYearOrdering(t *testing.T) {
	d := MustLookup("date")
	bc, _ := d.Parse("-0045-03-15") // Ides of March, 44 BC in XSD counting
	ad, _ := d.Parse("0045-03-15")
	if c, _ := Compare(bc, ad); c != -1 {
		t.Error("BC dates should precede AD dates")
	}
	bc2, _ := d.Parse("-0100-01-01")
	if c, _ := Compare(bc2, bc); c != -1 {
		t.Error("earlier BC year should precede later")
	}
}

func TestFloat32Precision(t *testing.T) {
	f := MustLookup("float")
	v, err := f.Parse("3.4028235e38") // max float32
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(v.F, 1) {
		t.Error("max float32 should parse finite")
	}
	if _, err := f.Parse("3.5e38"); err == nil {
		t.Error("beyond float32 range should fail strconv(32)")
	}
	d := MustLookup("double")
	if _, err := d.Parse("3.5e38"); err != nil {
		t.Errorf("double accepts it: %v", err)
	}
}

func TestFloatSpecialEquality(t *testing.T) {
	d := MustLookup("double")
	nan1, _ := d.Parse("NaN")
	nan2, _ := d.Parse("NaN")
	if !nan1.Equal(nan2) {
		t.Error("NaN equals NaN in the XSD value space")
	}
	inf, _ := d.Parse("INF")
	ninf, _ := d.Parse("-INF")
	if inf.Equal(ninf) {
		t.Error("INF != -INF")
	}
	if c, _ := Compare(ninf, inf); c != -1 {
		t.Error("-INF < INF")
	}
	if _, err := Compare(nan1, inf); err == nil {
		t.Error("NaN is unordered")
	}
}

func TestDurationComponents(t *testing.T) {
	b := MustLookup("duration")
	v, err := b.Parse("P2Y6M5DT12H35M30.5S")
	if err != nil {
		t.Fatal(err)
	}
	if v.Dur.Months != 30 {
		t.Errorf("months: %d", v.Dur.Months)
	}
	wantSecs := int64(5*86400 + 12*3600 + 35*60 + 30)
	if v.Dur.Secs != wantSecs || v.Dur.Nanos != 500_000_000 {
		t.Errorf("secs: %d.%d", v.Dur.Secs, v.Dur.Nanos)
	}
	// Canonical form round-trips.
	v2, err := b.Parse(v.Dur.String())
	if err != nil || !v.Equal(v2) {
		t.Errorf("duration canonical %q: %v", v.Dur.String(), err)
	}
	zero, _ := b.Parse("PT0S")
	if zero.Dur.String() != "PT0S" {
		t.Errorf("zero duration canonical: %q", zero.Dur.String())
	}
}

func TestNegativeDuration(t *testing.T) {
	b := MustLookup("duration")
	neg, _ := b.Parse("-P1D")
	pos, _ := b.Parse("P1D")
	if c, _ := Compare(neg, pos); c != -1 {
		t.Error("-P1D < P1D")
	}
	if neg.Dur.String() != "-P1D" {
		t.Errorf("canonical: %q", neg.Dur.String())
	}
}

func TestListValueStringAndLength(t *testing.T) {
	b := MustLookup("NMTOKENS")
	v, _ := b.Parse("  a  b\tc ")
	if v.String() != "a b c" {
		t.Errorf("list canonical: %q", v.String())
	}
	if n, ok := valueLength(v); !ok || n != 3 {
		t.Errorf("list length: %d %v", n, ok)
	}
}

func TestBase64Canonical(t *testing.T) {
	b := MustLookup("base64Binary")
	v, err := b.Parse("aGVs bG8=") // internal space is legal lexical
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "aGVsbG8=" {
		t.Errorf("canonical: %q", v.String())
	}
}

func TestTokenRejectsNothing(t *testing.T) {
	// token collapses arbitrarily bad whitespace but never errors.
	b := MustLookup("token")
	v, err := b.Parse(" \t such \n mess \r ")
	if err != nil || v.Str != "such mess" {
		t.Errorf("token: %q, %v", v.Str, err)
	}
}

func TestStringCompare(t *testing.T) {
	a := Value{Kind: VString, Str: "apple"}
	b := Value{Kind: VString, Str: "banana"}
	if c, err := Compare(a, b); err != nil || c != -1 {
		t.Errorf("string compare: %d, %v", c, err)
	}
}

func TestValueEqualityAcrossKinds(t *testing.T) {
	s := Value{Kind: VString, Str: "1"}
	d := Value{Kind: VDecimal, Dec: MustDecimal("1")}
	if s.Equal(d) {
		t.Error("cross-kind values must not be equal")
	}
}

func TestLeapSecondsNotSupported(t *testing.T) {
	// XSD 1.0 excludes second 60.
	reject(t, "time", "23:59:60")
}

func TestDateTimeTimezoneRange(t *testing.T) {
	accept(t, "dateTime", "2000-01-01T00:00:00+14:00")
	reject(t, "dateTime", "2000-01-01T00:00:00+15:00")
	reject(t, "dateTime", "2000-01-01T00:00:00+14:30")
}
