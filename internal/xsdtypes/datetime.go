package xsdtypes

import (
	"fmt"
	"strconv"
	"strings"
)

// TemporalKind distinguishes the seven XSD date/time primitive types that
// share the DateTime representation.
type TemporalKind int

// Temporal kinds.
const (
	KindDateTime TemporalKind = iota
	KindDate
	KindTime
	KindGYearMonth
	KindGYear
	KindGMonthDay
	KindGDay
	KindGMonth
)

// DateTime is a point (or partial point) on the XSD timeline. Fields that
// a given TemporalKind does not use hold their zero-point defaults, so all
// kinds share one ordering function.
type DateTime struct {
	Kind  TemporalKind
	Year  int // may be negative; 0 is not a valid year in XSD 1.0
	Month int
	Day   int
	Hour  int
	Min   int
	Sec   int
	Nanos int
	// HasTZ reports whether an explicit timezone was present; TZMin is
	// the offset in minutes east of UTC.
	HasTZ bool
	TZMin int
}

// daysInMonth returns the length of a month, honoring leap years.
func daysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if isLeap(year) {
			return 29
		}
		return 28
	}
	return 0
}

func isLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

// parseTZ parses a trailing timezone (Z or ±hh:mm) and returns the
// remaining string.
func parseTZ(s string) (rest string, hasTZ bool, tzMin int, err error) {
	if strings.HasSuffix(s, "Z") {
		return s[:len(s)-1], true, 0, nil
	}
	if len(s) >= 6 {
		tail := s[len(s)-6:]
		if (tail[0] == '+' || tail[0] == '-') && tail[3] == ':' {
			// fixed2, not Atoi: Atoi accepts a sign, so "+-5:59" would
			// parse as hour -5 and sail under the h > 14 check.
			h, err1 := fixed2(tail[1:3], "timezone hour")
			m, err2 := fixed2(tail[4:6], "timezone minute")
			if err1 != nil || err2 != nil || h > 14 || m > 59 || (h == 14 && m != 0) {
				return "", false, 0, fmt.Errorf("bad timezone %q", tail)
			}
			off := h*60 + m
			if tail[0] == '-' {
				off = -off
			}
			return s[:len(s)-6], true, off, nil
		}
	}
	return s, false, 0, nil
}

// parseYear parses the year field (4+ digits, optional leading '-').
func parseYear(s string) (int, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	if len(s) < 4 {
		return 0, fmt.Errorf("year %q must have at least four digits", s)
	}
	if len(s) > 4 && s[0] == '0' {
		return 0, fmt.Errorf("year %q must not have extraneous leading zeros", s)
	}
	// Digits only: the lexical space has no '+', and the '-' sign was
	// already consumed above, so anything Atoi would tolerate here
	// ("+2001", "-+123") is outside the lexical space.
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("bad year %q", s)
		}
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad year %q", s)
	}
	if y == 0 {
		return 0, fmt.Errorf("year 0000 is not valid in XSD 1.0")
	}
	if neg {
		y = -y
	}
	return y, nil
}

// fixed2 parses exactly two digits.
func fixed2(s string, what string) (int, error) {
	if len(s) != 2 || s[0] < '0' || s[0] > '9' || s[1] < '0' || s[1] > '9' {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return int(s[0]-'0')*10 + int(s[1]-'0'), nil
}

// parseTimePart parses hh:mm:ss(.fraction)?.
func parseTimePart(s string) (h, m, sec, nanos int, err error) {
	if len(s) < 8 || s[2] != ':' || s[5] != ':' {
		return 0, 0, 0, 0, fmt.Errorf("bad time %q", s)
	}
	if h, err = fixed2(s[0:2], "hour"); err != nil {
		return
	}
	if m, err = fixed2(s[3:5], "minute"); err != nil {
		return
	}
	if sec, err = fixed2(s[6:8], "second"); err != nil {
		return
	}
	rest := s[8:]
	if rest != "" {
		if rest[0] != '.' || len(rest) < 2 {
			return 0, 0, 0, 0, fmt.Errorf("bad fractional seconds in %q", s)
		}
		frac := rest[1:]
		if len(frac) > 9 {
			frac = frac[:9]
		}
		for _, r := range rest[1:] {
			if r < '0' || r > '9' {
				return 0, 0, 0, 0, fmt.Errorf("bad fractional seconds in %q", s)
			}
		}
		for len(frac) < 9 {
			frac += "0"
		}
		nanos, _ = strconv.Atoi(frac)
	}
	// 24:00:00 is permitted and means the first instant of the next day;
	// it is kept literally here and normalized in timelineSeconds.
	if h > 24 || m > 59 || sec > 59 || (h == 24 && (m != 0 || sec != 0 || nanos != 0)) {
		return 0, 0, 0, 0, fmt.Errorf("time %q out of range", s)
	}
	return
}

// checkDate validates month/day ranges.
func checkDate(year, month, day int) error {
	if month < 1 || month > 12 {
		return fmt.Errorf("month %d out of range", month)
	}
	if day < 1 || day > daysInMonth(year, month) {
		return fmt.Errorf("day %d out of range for %04d-%02d", day, year, month)
	}
	return nil
}

// ParseDateTime parses the lexical space of the given temporal kind.
func ParseDateTime(kind TemporalKind, s string) (DateTime, error) {
	dt := DateTime{Kind: kind, Month: 1, Day: 1}
	body, hasTZ, tzMin, err := parseTZ(s)
	if err != nil {
		return dt, err
	}
	dt.HasTZ, dt.TZMin = hasTZ, tzMin
	fail := func() (DateTime, error) {
		return dt, fmt.Errorf("bad %s value %q", temporalName(kind), s)
	}
	switch kind {
	case KindDateTime:
		ti := strings.IndexByte(body, 'T')
		if ti < 0 {
			return fail()
		}
		datePart, timePart := body[:ti], body[ti+1:]
		if err := parseDateInto(&dt, datePart); err != nil {
			return dt, err
		}
		if dt.Hour, dt.Min, dt.Sec, dt.Nanos, err = parseTimePart(timePart); err != nil {
			return dt, err
		}
	case KindDate:
		if err := parseDateInto(&dt, body); err != nil {
			return dt, err
		}
	case KindTime:
		if dt.Hour, dt.Min, dt.Sec, dt.Nanos, err = parseTimePart(body); err != nil {
			return dt, err
		}
		dt.Year = 1972 // arbitrary fixed reference for ordering
	case KindGYearMonth:
		i := strings.LastIndexByte(body, '-')
		if i <= 0 {
			return fail()
		}
		if dt.Year, err = parseYear(body[:i]); err != nil {
			return dt, err
		}
		if dt.Month, err = fixed2(body[i+1:], "month"); err != nil {
			return dt, err
		}
		if dt.Month < 1 || dt.Month > 12 {
			return fail()
		}
	case KindGYear:
		if dt.Year, err = parseYear(body); err != nil {
			return dt, err
		}
	case KindGMonthDay:
		if !strings.HasPrefix(body, "--") || len(body) != 7 || body[4] != '-' {
			return fail()
		}
		if dt.Month, err = fixed2(body[2:4], "month"); err != nil {
			return dt, err
		}
		if dt.Day, err = fixed2(body[5:7], "day"); err != nil {
			return dt, err
		}
		dt.Year = 1972 // leap reference year so --02-29 is valid
		if err := checkDate(dt.Year, dt.Month, dt.Day); err != nil {
			return dt, err
		}
	case KindGDay:
		if !strings.HasPrefix(body, "---") || len(body) != 5 {
			return fail()
		}
		if dt.Day, err = fixed2(body[3:5], "day"); err != nil {
			return dt, err
		}
		if dt.Day < 1 || dt.Day > 31 {
			return fail()
		}
		dt.Year, dt.Month = 1972, 1
	case KindGMonth:
		if !strings.HasPrefix(body, "--") || len(body) != 4 {
			return fail()
		}
		if dt.Month, err = fixed2(body[2:4], "month"); err != nil {
			return dt, err
		}
		if dt.Month < 1 || dt.Month > 12 {
			return fail()
		}
		dt.Year = 1972
	}
	return dt, nil
}

// parseDateInto parses YYYY-MM-DD.
func parseDateInto(dt *DateTime, s string) error {
	// Split from the right: the year may contain '-' only as its sign.
	if len(s) < 10 || s[len(s)-3] != '-' || s[len(s)-6] != '-' {
		return fmt.Errorf("bad date %q", s)
	}
	var err error
	if dt.Year, err = parseYear(s[:len(s)-6]); err != nil {
		return err
	}
	if dt.Month, err = fixed2(s[len(s)-5:len(s)-3], "month"); err != nil {
		return err
	}
	if dt.Day, err = fixed2(s[len(s)-2:], "day"); err != nil {
		return err
	}
	return checkDate(dt.Year, dt.Month, dt.Day)
}

func temporalName(kind TemporalKind) string {
	switch kind {
	case KindDateTime:
		return "dateTime"
	case KindDate:
		return "date"
	case KindTime:
		return "time"
	case KindGYearMonth:
		return "gYearMonth"
	case KindGYear:
		return "gYear"
	case KindGMonthDay:
		return "gMonthDay"
	case KindGDay:
		return "gDay"
	case KindGMonth:
		return "gMonth"
	}
	return "temporal"
}

// daysFromCivil converts a civil date to days since 1970-01-01 (proleptic
// Gregorian calendar).
func daysFromCivil(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	mm := int64(m)
	var doy int64
	if mm > 2 {
		doy = (153*(mm-3)+2)/5 + int64(d) - 1
	} else {
		doy = (153*(mm+9)+2)/5 + int64(d) - 1
	}
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

// timelineSeconds maps the value onto a single timeline in seconds
// (plus nanoseconds), normalizing timezone offsets. Values without a
// timezone are treated as UTC — a documented simplification of the spec's
// partial order (the spec leaves a ±14h window indeterminate).
func (dt DateTime) timelineSeconds() (int64, int) {
	days := daysFromCivil(dt.Year, dt.Month, dt.Day)
	secs := days*86400 + int64(dt.Hour)*3600 + int64(dt.Min)*60 + int64(dt.Sec)
	if dt.HasTZ {
		secs -= int64(dt.TZMin) * 60
	}
	return secs, dt.Nanos
}

// Cmp orders two temporal values of the same kind.
func (dt DateTime) Cmp(other DateTime) int {
	a, an := dt.timelineSeconds()
	b, bn := other.timelineSeconds()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case an < bn:
		return -1
	case an > bn:
		return 1
	default:
		return 0
	}
}

// String returns a canonical-ish lexical representation.
func (dt DateTime) String() string {
	var sb strings.Builder
	writeYear := func() {
		if dt.Year < 0 {
			fmt.Fprintf(&sb, "-%04d", -dt.Year)
		} else {
			fmt.Fprintf(&sb, "%04d", dt.Year)
		}
	}
	switch dt.Kind {
	case KindDateTime:
		writeYear()
		fmt.Fprintf(&sb, "-%02d-%02dT%02d:%02d:%02d", dt.Month, dt.Day, dt.Hour, dt.Min, dt.Sec)
		writeNanos(&sb, dt.Nanos)
	case KindDate:
		writeYear()
		fmt.Fprintf(&sb, "-%02d-%02d", dt.Month, dt.Day)
	case KindTime:
		fmt.Fprintf(&sb, "%02d:%02d:%02d", dt.Hour, dt.Min, dt.Sec)
		writeNanos(&sb, dt.Nanos)
	case KindGYearMonth:
		writeYear()
		fmt.Fprintf(&sb, "-%02d", dt.Month)
	case KindGYear:
		writeYear()
	case KindGMonthDay:
		fmt.Fprintf(&sb, "--%02d-%02d", dt.Month, dt.Day)
	case KindGDay:
		fmt.Fprintf(&sb, "---%02d", dt.Day)
	case KindGMonth:
		fmt.Fprintf(&sb, "--%02d", dt.Month)
	}
	if dt.HasTZ {
		if dt.TZMin == 0 {
			sb.WriteByte('Z')
		} else {
			off := dt.TZMin
			sign := byte('+')
			if off < 0 {
				sign = '-'
				off = -off
			}
			fmt.Fprintf(&sb, "%c%02d:%02d", sign, off/60, off%60)
		}
	}
	return sb.String()
}

func writeNanos(sb *strings.Builder, nanos int) {
	if nanos == 0 {
		return
	}
	frac := fmt.Sprintf("%09d", nanos)
	frac = strings.TrimRight(frac, "0")
	sb.WriteByte('.')
	sb.WriteString(frac)
}

// Duration is an xs:duration value: a (months, seconds) pair, each part
// signed together via Neg.
type Duration struct {
	Neg    bool
	Months int64
	Secs   int64
	Nanos  int64
}

// ParseDuration parses the lexical form PnYnMnDTnHnMnS.
func ParseDuration(s string) (Duration, error) {
	orig := s
	var d Duration
	if strings.HasPrefix(s, "-") {
		d.Neg = true
		s = s[1:]
	}
	if !strings.HasPrefix(s, "P") {
		return d, fmt.Errorf("duration %q must start with 'P'", orig)
	}
	s = s[1:]
	if s == "" {
		return d, fmt.Errorf("duration %q has no components", orig)
	}
	datePart, timePart := s, ""
	if i := strings.IndexByte(s, 'T'); i >= 0 {
		datePart, timePart = s[:i], s[i+1:]
		if timePart == "" {
			return d, fmt.Errorf("duration %q has a 'T' with no time components", orig)
		}
	}
	readNum := func(str string) (string, int64, string, bool, error) {
		// returns (digits, value, rest, sawDot, err); digits may include
		// one '.' only for seconds, handled by the caller.
		i := 0
		sawDot := false
		for i < len(str) && (str[i] >= '0' && str[i] <= '9' || (str[i] == '.' && !sawDot)) {
			if str[i] == '.' {
				sawDot = true
			}
			i++
		}
		if i == 0 {
			return "", 0, str, false, fmt.Errorf("expected number in duration %q", orig)
		}
		digits := str[:i]
		if sawDot {
			return digits, 0, str[i:], true, nil
		}
		v, err := strconv.ParseInt(digits, 10, 64)
		return digits, v, str[i:], false, err
	}
	seen := false
	// Date components: Y, M, D.
	for datePart != "" {
		digits, v, rest, sawDot, err := readNum(datePart)
		if err != nil {
			return d, err
		}
		if rest == "" {
			return d, fmt.Errorf("duration %q: number %q without designator", orig, digits)
		}
		if sawDot {
			return d, fmt.Errorf("duration %q: fractions only allowed on seconds", orig)
		}
		switch rest[0] {
		case 'Y':
			d.Months += v * 12
		case 'M':
			d.Months += v
		case 'D':
			d.Secs += v * 86400
		default:
			return d, fmt.Errorf("duration %q: bad designator %q", orig, rest[0])
		}
		seen = true
		datePart = rest[1:]
	}
	for timePart != "" {
		digits, v, rest, sawDot, err := readNum(timePart)
		if err != nil {
			return d, err
		}
		if rest == "" {
			return d, fmt.Errorf("duration %q: number %q without designator", orig, digits)
		}
		switch rest[0] {
		case 'H':
			if sawDot {
				return d, fmt.Errorf("duration %q: fractions only allowed on seconds", orig)
			}
			d.Secs += v * 3600
		case 'M':
			if sawDot {
				return d, fmt.Errorf("duration %q: fractions only allowed on seconds", orig)
			}
			d.Secs += v * 60
		case 'S':
			if sawDot {
				dot := strings.IndexByte(digits, '.')
				whole, frac := digits[:dot], digits[dot+1:]
				// The grammar is [0-9]+(\.[0-9]+)?S: digits are required on
				// both sides of the point, so "1.S" and ".5S" are out.
				if whole == "" || frac == "" {
					return d, fmt.Errorf("duration %q: bad seconds", orig)
				}
				w, err := strconv.ParseInt(whole, 10, 64)
				if err != nil {
					return d, err
				}
				d.Secs += w
				if len(frac) > 9 {
					frac = frac[:9]
				}
				for len(frac) < 9 {
					frac += "0"
				}
				n, _ := strconv.ParseInt(frac, 10, 64)
				d.Nanos += n
			} else {
				d.Secs += v
			}
		default:
			return d, fmt.Errorf("duration %q: bad designator %q", orig, rest[0])
		}
		seen = true
		timePart = rest[1:]
	}
	if !seen {
		return d, fmt.Errorf("duration %q has no components", orig)
	}
	return d, nil
}

// approxSeconds maps the duration onto seconds using the spec's reference
// month length (the spec's order is partial; like most validators we use a
// fixed conversion of 1 month = 30.436875 days, documented in DESIGN.md).
func (d Duration) approxSeconds() float64 {
	const secsPerMonth = 30.436875 * 86400
	v := float64(d.Months)*secsPerMonth + float64(d.Secs) + float64(d.Nanos)/1e9
	if d.Neg {
		return -v
	}
	return v
}

// Cmp orders two durations using the approximate total ordering.
func (d Duration) Cmp(other Duration) int {
	a, b := d.approxSeconds(), other.approxSeconds()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String returns a canonical-ish lexical form.
func (d Duration) String() string {
	var sb strings.Builder
	if d.Neg {
		sb.WriteByte('-')
	}
	sb.WriteByte('P')
	months := d.Months
	if y := months / 12; y != 0 {
		fmt.Fprintf(&sb, "%dY", y)
		months -= y * 12
	}
	if months != 0 {
		fmt.Fprintf(&sb, "%dM", months)
	}
	secs := d.Secs
	if days := secs / 86400; days != 0 {
		fmt.Fprintf(&sb, "%dD", days)
		secs -= days * 86400
	}
	if secs != 0 || d.Nanos != 0 {
		sb.WriteByte('T')
		if h := secs / 3600; h != 0 {
			fmt.Fprintf(&sb, "%dH", h)
			secs -= h * 3600
		}
		if m := secs / 60; m != 0 {
			fmt.Fprintf(&sb, "%dM", m)
			secs -= m * 60
		}
		if secs != 0 || d.Nanos != 0 {
			if d.Nanos != 0 {
				frac := strings.TrimRight(fmt.Sprintf("%09d", d.Nanos), "0")
				fmt.Fprintf(&sb, "%d.%sS", secs, frac)
			} else {
				fmt.Fprintf(&sb, "%dS", secs)
			}
		}
	}
	if sb.String() == "P" || sb.String() == "-P" {
		sb.WriteString("T0S")
	}
	return sb.String()
}
