package xsdtypes

import (
	"fmt"
	"strings"
)

// Decimal is an arbitrary-precision decimal in the xs:decimal value space,
// stored in a normalized sign/digits form: Int has no leading zeros, Frac
// has no trailing zeros, and zero is {Neg: false, Int: "", Frac: ""}.
type Decimal struct {
	Neg  bool
	Int  string // integer digits, leading zeros stripped ("" means 0)
	Frac string // fraction digits, trailing zeros stripped
}

// ParseDecimal parses the xs:decimal lexical space: optional sign, digits,
// optional fraction. At least one digit must be present.
func ParseDecimal(s string) (Decimal, error) {
	orig := s
	var d Decimal
	if s == "" {
		return d, fmt.Errorf("empty decimal")
	}
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		d.Neg = true
		s = s[1:]
	}
	intPart := s
	fracPart := ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return Decimal{}, fmt.Errorf("decimal %q has no digits", orig)
	}
	for _, r := range intPart {
		if r < '0' || r > '9' {
			return Decimal{}, fmt.Errorf("bad digit %q in decimal %q", r, orig)
		}
	}
	for _, r := range fracPart {
		if r < '0' || r > '9' {
			return Decimal{}, fmt.Errorf("bad digit %q in decimal %q", r, orig)
		}
	}
	d.Int = strings.TrimLeft(intPart, "0")
	d.Frac = strings.TrimRight(fracPart, "0")
	if d.Int == "" && d.Frac == "" {
		d.Neg = false // normalize -0 to 0
	}
	return d, nil
}

// MustDecimal parses a decimal literal known to be valid.
func MustDecimal(s string) Decimal {
	d, err := ParseDecimal(s)
	if err != nil {
		panic(err)
	}
	return d
}

// IsZero reports whether d is zero.
func (d Decimal) IsZero() bool { return d.Int == "" && d.Frac == "" }

// IsInteger reports whether d has no fractional part.
func (d Decimal) IsInteger() bool { return d.Frac == "" }

// Cmp compares two decimals, returning -1, 0 or +1.
func (d Decimal) Cmp(e Decimal) int {
	if d.Neg != e.Neg {
		if d.IsZero() && e.IsZero() {
			return 0
		}
		if d.Neg {
			return -1
		}
		return 1
	}
	mag := cmpMagnitude(d, e)
	if d.Neg {
		return -mag
	}
	return mag
}

// cmpMagnitude compares absolute values.
func cmpMagnitude(d, e Decimal) int {
	if len(d.Int) != len(e.Int) {
		if len(d.Int) < len(e.Int) {
			return -1
		}
		return 1
	}
	if c := strings.Compare(d.Int, e.Int); c != 0 {
		return c
	}
	// Same integer part: compare fractions digit-wise (missing digits
	// count as zero).
	df, ef := d.Frac, e.Frac
	n := max(len(df), len(ef))
	for i := 0; i < n; i++ {
		var a, b byte = '0', '0'
		if i < len(df) {
			a = df[i]
		}
		if i < len(ef) {
			b = ef[i]
		}
		if a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}

// String returns the canonical lexical form (e.g. "-1.5", "0", "0.3").
func (d Decimal) String() string {
	var sb strings.Builder
	if d.Neg && !d.IsZero() {
		sb.WriteByte('-')
	}
	if d.Int == "" {
		sb.WriteByte('0')
	} else {
		sb.WriteString(d.Int)
	}
	if d.Frac != "" {
		sb.WriteByte('.')
		sb.WriteString(d.Frac)
	}
	return sb.String()
}

// TotalDigits returns the number of significant decimal digits (for the
// totalDigits facet); zero has one digit.
func (d Decimal) TotalDigits() int {
	n := len(d.Int) + len(d.Frac)
	if n == 0 {
		return 1
	}
	return n
}

// FractionDigits returns the number of fraction digits.
func (d Decimal) FractionDigits() int { return len(d.Frac) }

// Int64 converts to int64, reporting overflow or a fractional part.
func (d Decimal) Int64() (int64, error) {
	if !d.IsInteger() {
		return 0, fmt.Errorf("decimal %s is not an integer", d)
	}
	limit := uint64(1<<63 - 1)
	if d.Neg {
		limit = 1 << 63 // math.MinInt64 magnitude
	}
	var v uint64
	for i := 0; i < len(d.Int); i++ {
		digit := uint64(d.Int[i] - '0')
		if v > (limit-digit)/10 {
			return 0, fmt.Errorf("decimal %s overflows int64", d)
		}
		v = v*10 + digit
	}
	if d.Neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// DecimalFromInt64 builds a Decimal from an int64.
func DecimalFromInt64(v int64) Decimal {
	if v == 0 {
		return Decimal{}
	}
	neg := v < 0
	var s string
	if v == -(1 << 63) {
		s = "9223372036854775808"
	} else {
		if neg {
			v = -v
		}
		s = fmt.Sprintf("%d", v)
	}
	return Decimal{Neg: neg, Int: s}
}
