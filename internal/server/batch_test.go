package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/schemas"
)

func postBatch(t *testing.T, url string, docs []string) (int, batchResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(batchRequest{Documents: docs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("batch response not JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, br, raw
}

func TestValidateBatch(t *testing.T) {
	m := &obs.Metrics{}
	ts, _ := newTestServer(t, Config{Metrics: m})
	url := ts.URL + "/v1/validate-batch/po"

	invalid := strings.Replace(schemas.PurchaseOrderDoc, "<quantity>1</quantity>", "<quantity>9999</quantity>", 1)
	code, br, raw := postBatch(t, url, []string{
		schemas.PurchaseOrderDoc, // valid
		invalid,                  // schema-invalid
		"<broken",                // malformed
		schemas.PurchaseOrderDoc, // valid
	})
	if code != http.StatusOK {
		t.Fatalf("batch answered %d: %s", code, raw)
	}
	if br.Count != 4 || br.Valid != 2 || br.Invalid != 2 {
		t.Fatalf("count/valid/invalid = %d/%d/%d, want 4/2/2", br.Count, br.Valid, br.Invalid)
	}
	if br.Schema != "po" || br.SchemaVersion != 1 {
		t.Fatalf("schema identity = %s v%d", br.Schema, br.SchemaVersion)
	}
	// Verdicts are index-aligned with the request.
	wantValid := []bool{true, false, false, true}
	for i, r := range br.Results {
		if r.Valid != wantValid[i] {
			t.Fatalf("results[%d].valid = %v, want %v (%+v)", i, r.Valid, wantValid[i], br.Results)
		}
	}
	// The malformed document's verdict carries its parse error, same
	// contract as /v1/validate.
	if len(br.Results[2].Violations) == 0 || br.Results[2].Violations[0].Path != "/" {
		t.Fatalf("malformed doc verdict = %+v, want a parse violation at /", br.Results[2])
	}
	// Invalid meters documents: one batch with two bad docs moves the
	// series by 2, and the whole batch is one request.
	series := m.Series("po", "batch")
	if got := series.Invalid.Load(); got != 2 {
		t.Fatalf("batch series Invalid = %d, want 2", got)
	}
	if got := series.Requests.Load(); got != 1 {
		t.Fatalf("batch series Requests = %d, want 1", got)
	}
}

func TestValidateBatchRequestErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxBatchDocs: 4})

	code, _, _ := postBatch(t, ts.URL+"/v1/validate-batch/nosuch", []string{schemas.PurchaseOrderDoc})
	if code != http.StatusNotFound {
		t.Fatalf("unknown schema answered %d, want 404", code)
	}
	code, _, _ = postBatch(t, ts.URL+"/v1/validate-batch/po", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch answered %d, want 400", code)
	}
	docs := make([]string, 5)
	for i := range docs {
		docs[i] = schemas.PurchaseOrderDoc
	}
	code, _, _ = postBatch(t, ts.URL+"/v1/validate-batch/po", docs)
	if code != http.StatusBadRequest {
		t.Fatalf("over-limit batch answered %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/validate-batch/po", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-JSON batch answered %d, want 400", resp.StatusCode)
	}
}

func TestDrainingHealthz(t *testing.T) {
	ts, s := newTestServer(t, Config{})

	get := func() (int, healthResponse, string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, hr, resp.Header.Get("Draining")
	}

	code, hr, _ := get()
	if code != http.StatusOK || hr.Status != "ok" || hr.Draining {
		t.Fatalf("healthy node: %d %+v", code, hr)
	}

	s.SetDraining(true)
	code, hr, hdr := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz answered %d, want 503", code)
	}
	if hr.Status != "draining" || !hr.Draining || hdr != "true" {
		t.Fatalf("draining healthz = %+v (Draining header %q)", hr, hdr)
	}
	// Draining refuses NEW health checks, not work: validation still
	// answers, because in-flight and already-routed requests must
	// complete during the drain notice.
	code, vr := postDoc(t, ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK || !vr.Valid {
		t.Fatalf("validate during drain = %d valid=%v", code, vr.Valid)
	}

	s.SetDraining(false)
	if code, hr, _ := get(); code != http.StatusOK || hr.Draining {
		t.Fatalf("undrained healthz = %d %+v", code, hr)
	}
}

func TestBufferPoolEquivalence(t *testing.T) {
	pooled, _ := newTestServer(t, Config{})
	direct, _ := newTestServer(t, Config{DisableBufferPool: true})

	read := func(ts string) (string, http.Header) {
		resp, err := http.Post(ts+"/v1/validate/po", "application/xml", strings.NewReader(schemas.PurchaseOrderDoc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header
	}
	pb, ph := read(pooled.URL)
	db, _ := read(direct.URL)
	// elapsed_ns differs run to run; zero it before comparing.
	norm := func(s string) string {
		var v map[string]any
		if err := json.Unmarshal([]byte(s), &v); err != nil {
			t.Fatal(err)
		}
		delete(v, "elapsed_ns")
		out, _ := json.Marshal(v) //nolint:errcheck
		return string(out)
	}
	if norm(pb) != norm(db) {
		t.Fatalf("pooled and direct encodings differ:\n%s\n%s", pb, db)
	}
	// The pooled path pre-sizes the body, so the response carries an
	// exact Content-Length instead of chunked framing.
	if cl := ph.Get("Content-Length"); cl == "" {
		t.Fatal("pooled response has no Content-Length")
	} else if want := fmt.Sprint(len(pb)); cl != want {
		t.Fatalf("Content-Length = %s, body is %s bytes", cl, want)
	}
}
