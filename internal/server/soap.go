package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/soap"
)

// RegisterSOAP mounts a SOAP service at POST /v1/soap/{name} (envelope
// dispatch) and GET /v1/soap/{name} (WSDL echo). Must be called before
// the handler serves traffic; a second service with the same name
// replaces the first. The name space of routed services is fixed by
// configuration, so — as with schemas — metrics series exist only for
// registered names, never for probes.
func (s *Server) RegisterSOAP(svc *soap.Service) {
	s.soapSvcs[svc.Name()] = svc
}

// handleSOAPWSDL answers GET /v1/soap/{service} with the service
// description the endpoint was built from, byte-identical to the source
// document, so clients can generate stubs against exactly what the
// server dispatches.
func (s *Server) handleSOAPWSDL(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("service")
	svc, ok := s.soapSvcs[name]
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown SOAP service %q", name)})
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(svc.WSDL()) //nolint:errcheck // client gone; nothing to do
}

// handleSOAP answers POST /v1/soap/{service}: the body is a SOAP 1.1 or
// 1.2 envelope, dispatched on its body root element through the service's
// operation table, behind the same shed/deadline worker as the validation
// endpoints.
//
// Response contract: every envelope that reaches dispatch is answered
// with a SOAP envelope — success or Fault — in the request's SOAP
// version; schema-invalid requests fault with one detail entry per
// violation and never surface as a 500. Only transport-layer failures
// answer JSON like the rest of the service: unknown service (404), body
// over the cap (413), shed load (429), deadline (504).
func (s *Server) handleSOAP(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("service")
	svc, ok := s.soapSvcs[name]
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown SOAP service %q", name)})
		return
	}
	series := s.metrics.Series("soap:"+name, "service")
	start := time.Now()
	var resp *soap.Response
	out, ok := s.withWorker(w, r, series, func(ctx context.Context, body io.Reader) outcome {
		data, err := io.ReadAll(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return outcome{code: http.StatusRequestEntityTooLarge,
					errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)}
			}
			return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("reading request body: %v", err)}
		}
		if ctx.Err() != nil {
			return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
		}
		resp = svc.Handle(ctx, data, r.Header.Get("SOAPAction"))
		return outcome{}
	})
	if !ok {
		return
	}
	if out.code != 0 {
		series.Errors.Inc()
		s.writeJSON(w, out.code, errorResponse{Error: out.errMsg})
		return
	}
	// Per-operation series: requests that never resolved to an operation
	// (malformed envelopes, unknown body roots) meter under "envelope" so
	// the operation key space stays bounded by the WSDL.
	opKey := "envelope"
	if resp.Operation != "" {
		opKey = "op:" + resp.Operation
	}
	opSeries := s.metrics.Series("soap:"+name, opKey)
	opSeries.Requests.Inc()
	opSeries.Latency.Observe(time.Since(start))
	if resp.Faulted {
		opSeries.Invalid.Inc()
	}
	w.Header().Set("Content-Type", resp.ContentType)
	w.WriteHeader(resp.Status)
	w.Write(resp.Body) //nolint:errcheck // client gone; nothing to do
}
