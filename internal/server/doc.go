// Package server is the HTTP face of the validation service: it turns
// the registry's compiled validators into network endpoints with the
// protections a long-running, shared service needs — body caps,
// per-request deadlines, load shedding and metrics — while keeping the
// library's verdict semantics exactly.
//
// # Endpoints
//
//	POST /v1/validate/{schema}          validate the body (DOM path)
//	POST /v1/validate/{schema}?stream=1 validate incrementally (O(depth))
//	POST /v1/decode/{schema}            validate + decode to canonical JSON (?stream=1 one-pass)
//	POST /v1/encode/{schema}            canonical JSON back to schema-valid XML
//	GET  /v1/schemas                    registry contents, versions, closure sizes, load errors
//	GET  /v1/schemas/{schema}/compat    evolution report for the last accepted reload
//	GET  /healthz                       liveness (503 when nothing loaded)
//	GET  /metrics                       obs JSON snapshot (incl. compat tallies)
//
// The compat endpoint exposes the registry's classification of the
// schema's most recent version transition (backward/forward/full/none,
// with per-direction break reasons); version 1 carries an explanatory
// message instead of a level, and a pending load or gate rejection is
// surfaced as load_error alongside the serving version's report.
//
// A 200 always carries a verdict: valid:true, or valid:false with the
// violation list (malformed XML is a verdict too, mirroring
// validator.ValidateBytes). Non-200s mean no verdict was produced:
// 404 unknown schema, 413 body over the cap, 429 shed by the
// concurrency limiter (with Retry-After), 504 deadline exceeded.
//
// # Backpressure
//
// Admission is a semaphore sized by Config.MaxConcurrent. A request that
// cannot get a slot is rejected immediately with 429 — before its body
// is read — rather than queued: under sustained overload a queue only
// converts overload into latency for everyone. Each admitted request's
// validation runs in a worker goroutine; when the per-request deadline
// fires while the worker is parked in a blocked body read, the handler
// pokes the connection's read deadline (http.ResponseController) to fail
// that read, collects the worker, and answers 504. The worker holds the
// semaphore slot until its validation truly stops, so a slowloris client
// cannot make the limiter overadmit.
//
// # Role in the pipeline
//
// server is the middle of the serving layer (registry → server → obs):
// it resolves schemas through registry.Get — inheriting the hot-swap
// drain guarantee, an in-flight request finishes on the version it
// resolved — and records every request into an obs.Metrics. cmd/xsdserved
// wires it to flags, signals and graceful shutdown.
package server
