package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/schemas"
)

// newTestServer boots a registry over a temp dir holding the paper's
// purchase-order schema and mounts the service on httptest.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "po.xsd"), []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func postDoc(t *testing.T, url, doc string) (int, validateResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr validateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, vr
}

func TestValidateEndpoints(t *testing.T) {
	ts, s := newTestServer(t, Config{})
	invalidDoc := strings.Replace(schemas.PurchaseOrderDoc, "<quantity>1</quantity>", "<quantity>9999</quantity>", 1)

	for _, mode := range []string{"dom", "stream"} {
		url := ts.URL + "/v1/validate/po"
		if mode == "stream" {
			url += "?stream=1"
		}
		t.Run(mode, func(t *testing.T) {
			code, vr := postDoc(t, url, schemas.PurchaseOrderDoc)
			if code != http.StatusOK || !vr.Valid {
				t.Fatalf("valid doc: code=%d resp=%+v", code, vr)
			}
			if vr.Schema != "po" || vr.SchemaVersion != 1 || vr.Mode != mode {
				t.Errorf("response metadata wrong: %+v", vr)
			}
			code, vr = postDoc(t, url, invalidDoc)
			if code != http.StatusOK || vr.Valid || len(vr.Violations) == 0 {
				t.Fatalf("invalid doc: code=%d resp=%+v", code, vr)
			}
			if !strings.Contains(vr.Violations[0].Path, "quantity") {
				t.Errorf("violation path %q does not name the quantity element", vr.Violations[0].Path)
			}
		})
	}

	t.Run("malformed is a verdict", func(t *testing.T) {
		code, vr := postDoc(t, ts.URL+"/v1/validate/po", "<purchaseOrder><unclosed>")
		if code != http.StatusOK || vr.Valid || len(vr.Violations) != 1 {
			t.Fatalf("malformed doc: code=%d resp=%+v", code, vr)
		}
	})

	t.Run("unknown schema 404", func(t *testing.T) {
		code, _ := postDoc(t, ts.URL+"/v1/validate/nosuch", schemas.PurchaseOrderDoc)
		if code != http.StatusNotFound {
			t.Fatalf("code = %d, want 404", code)
		}
	})

	t.Run("schemas listing", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/schemas")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr schemasResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		if len(sr.Schemas) != 1 || sr.Schemas[0].Name != "po" || sr.Schemas[0].Version != 1 {
			t.Fatalf("schemas = %+v", sr)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d", resp.StatusCode)
		}
	})

	t.Run("metrics match driven load", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var snap obs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		series := map[string]obs.SeriesSnapshot{}
		for _, ss := range snap.Series {
			series[ss.Schema+"/"+ss.Endpoint] = ss
		}
		// dom: valid + invalid + malformed = 3 requests, 2 invalid.
		if d := series["po/dom"]; d.Requests != 3 || d.Invalid != 2 || d.Errors != 0 {
			t.Errorf("po/dom series = %+v, want requests=3 invalid=2", d)
		}
		// stream: valid + invalid = 2 requests, 1 invalid.
		if st := series["po/stream"]; st.Requests != 2 || st.Invalid != 1 {
			t.Errorf("po/stream series = %+v, want requests=2 invalid=1", st)
		}
		if d := series["po/dom"]; d.Latency.Count != 3 || d.Latency.P99Ns <= 0 {
			t.Errorf("po/dom latency histogram empty: %+v", d.Latency)
		}
		// The unknown-schema probe must not have minted a series.
		for key := range series {
			if strings.HasPrefix(key, "nosuch/") {
				t.Errorf("unknown schema leaked into metrics: %s", key)
			}
		}
		if s.Metrics().InFlight.Load() != 0 {
			t.Errorf("in-flight gauge nonzero at rest")
		}
	})
}

// TestSheddingUnderConcurrencyLimit proves the limiter: with one slot, a
// stream request parked on a slow body occupies it, the next arrival is
// shed with 429 + Retry-After, and the parked request still completes
// with a correct verdict — zero failed in-flight validations.
func TestSheddingUnderConcurrencyLimit(t *testing.T) {
	ts, s := newTestServer(t, Config{MaxConcurrent: 1})

	pr, pw := io.Pipe()
	type result struct {
		code int
		vr   validateResponse
	}
	firstDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/validate/po?stream=1", "application/xml", pr)
		if err != nil {
			firstDone <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var vr validateResponse
		json.NewDecoder(resp.Body).Decode(&vr) //nolint:errcheck
		firstDone <- result{code: resp.StatusCode, vr: vr}
	}()

	// Feed a prefix, then wait until the request occupies the only slot.
	doc := schemas.PurchaseOrderDoc
	if _, err := pw.Write([]byte(doc[:80])); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the validation slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Second arrival: must be shed, not queued.
	resp, err := http.Post(ts.URL+"/v1/validate/po", "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request code = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Unpark the first request: it must finish with a clean verdict.
	if _, err := pw.Write([]byte(doc[80:])); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	first := <-firstDone
	if first.code != http.StatusOK || !first.vr.Valid {
		t.Fatalf("in-flight request failed during shedding: code=%d resp=%+v", first.code, first.vr)
	}

	snap := s.Metrics().Snapshot()
	var shed, requests int64
	for _, ss := range snap.Series {
		shed += ss.Shed
		requests += ss.Requests
	}
	if shed != 1 || requests != 1 {
		t.Errorf("metrics after shedding: shed=%d requests=%d, want 1/1", shed, requests)
	}
}

// TestDeadlineAnswers504 proves a stalled client cannot hold a handler
// forever: the deadline fires while the worker is parked in a body read,
// and the slot is released once the aborted body unblocks the worker.
func TestDeadlineAnswers504(t *testing.T) {
	ts, s := newTestServer(t, Config{RequestTimeout: 150 * time.Millisecond, MaxConcurrent: 1})

	pr, pw := io.Pipe()
	defer pw.Close()
	// Feed a prefix so the request (headers + first chunk) reaches the
	// server, then stall: the handler must answer at its deadline, not
	// wait for the body.
	go pw.Write([]byte(schemas.PurchaseOrderDoc[:80])) //nolint:errcheck
	resp, err := http.Post(ts.URL+"/v1/validate/po?stream=1", "application/xml", pr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504", resp.StatusCode)
	}
	// The handler answered, net/http tears down the request body, the
	// worker unblocks and frees the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("validation slot never released after deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBodyCap(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxBodyBytes: 1024})
	big := strings.Replace(schemas.PurchaseOrderDoc, "Hurry, my lawn is going wild",
		strings.Repeat("x", 4096), 1)
	for _, mode := range []string{"dom", "stream"} {
		url := ts.URL + "/v1/validate/po"
		if mode == "stream" {
			url += "?stream=1"
		}
		resp, err := http.Post(url, "application/xml", strings.NewReader(big))
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: code = %d, want 413", mode, resp.StatusCode)
		}
	}
}

// TestReloadVisibleThroughAPI drives a registry swap and checks the
// service surfaces the new version on the very next request.
func TestReloadVisibleThroughAPI(t *testing.T) {
	ts, s := newTestServer(t, Config{})
	reg := s.reg
	poPath := filepath.Join(reg.Dir(), "po.xsd")
	v2 := strings.Replace(schemas.PurchaseOrderXSD,
		`<xsd:element name="items" type="Items"/>`,
		`<xsd:element name="items" type="Items"/>
      <xsd:element name="priority" type="xsd:string" minOccurs="0"/>`, 1)
	if err := os.WriteFile(poPath, []byte(v2), 0o644); err != nil {
		t.Fatal(err)
	}
	stamp := time.Now().Add(time.Minute)
	if err := os.Chtimes(poPath, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	code, vr := postDoc(t, ts.URL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if code != http.StatusOK || !vr.Valid || vr.SchemaVersion != 2 {
		t.Fatalf("after reload: code=%d resp=%+v, want valid at schema_version 2", code, vr)
	}
}

func TestHealthzDegradedWhenEmpty(t *testing.T) {
	reg := registry.New(t.TempDir(), nil)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Registry: reg}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty registry healthz = %d, want 503", resp.StatusCode)
	}
}

// TestParallelValidateMode drives ?parallel=1 through both sides of the
// size threshold: a small document (sequential under the hood) and a
// large one (the worker pool), with verdicts identical to the dom mode
// and a distinct metrics series either way.
func TestParallelValidateMode(t *testing.T) {
	ts, s := newTestServer(t, Config{MaxBodyBytes: 64 << 20})
	url := ts.URL + "/v1/validate/po?parallel=1"

	code, vr := postDoc(t, url, schemas.PurchaseOrderDoc)
	if code != http.StatusOK || !vr.Valid || vr.Mode != "parallel" {
		t.Fatalf("small valid doc: code=%d resp=%+v", code, vr)
	}

	// A >1MiB order with seeded defects: must cross the threshold and
	// agree with the dom mode violation-for-violation.
	var sb strings.Builder
	sb.WriteString(`<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items>`)
	for i := 0; i < 12000; i++ {
		qty := "1"
		if i%4000 == 1000 {
			qty = "bogus"
		}
		fmt.Fprintf(&sb, `<item partNum="%03d-AB"><productName>Widget</productName><quantity>%s</quantity><USPrice>9.95</USPrice></item>`, i%1000, qty)
	}
	sb.WriteString(`</items></purchaseOrder>`)
	big := sb.String()
	if len(big) < parallelThreshold {
		t.Fatalf("test doc only %d bytes; below the %d threshold", len(big), parallelThreshold)
	}
	codePar, vrPar := postDoc(t, url, big)
	codeDom, vrDom := postDoc(t, ts.URL+"/v1/validate/po", big)
	if codePar != http.StatusOK || codeDom != http.StatusOK {
		t.Fatalf("codes: parallel=%d dom=%d", codePar, codeDom)
	}
	if vrPar.Valid || len(vrPar.Violations) != len(vrDom.Violations) {
		t.Fatalf("verdicts diverged: parallel=%+v dom has %d violations", vrPar, len(vrDom.Violations))
	}
	for i := range vrPar.Violations {
		if vrPar.Violations[i] != vrDom.Violations[i] {
			t.Errorf("violation %d diverged: parallel=%+v dom=%+v", i, vrPar.Violations[i], vrDom.Violations[i])
		}
	}
	snap := s.Metrics().Snapshot()
	found := false
	for _, ss := range snap.Series {
		if ss.Schema == "po" && ss.Endpoint == "parallel" {
			found = true
			if ss.Requests != 2 || ss.Invalid != 1 {
				t.Errorf("po/parallel series = %+v, want requests=2 invalid=1", ss)
			}
		}
	}
	if !found {
		t.Error("no po/parallel metrics series minted")
	}
	// stream=1 wins over parallel=1 (the parallel walk needs the DOM).
	code, vr = postDoc(t, ts.URL+"/v1/validate/po?stream=1&parallel=1", schemas.PurchaseOrderDoc)
	if code != http.StatusOK || vr.Mode != "stream" {
		t.Fatalf("stream precedence: code=%d mode=%q", code, vr.Mode)
	}
}
