package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/dom"
	"repro/internal/validator"
)

// batchRequest is the body of POST /v1/validate-batch/{schema}: a set of
// XML documents carried as JSON strings, validated together under one
// admission slot and one deadline.
type batchRequest struct {
	Documents []string `json:"documents"`
}

// batchResult is one document's verdict, index-aligned with the request.
type batchResult struct {
	Valid      bool            `json:"valid"`
	Violations []violationJSON `json:"violations,omitempty"`
}

// batchResponse is the payload of POST /v1/validate-batch/{schema}.
type batchResponse struct {
	Schema        string        `json:"schema"`
	SchemaVersion int           `json:"schema_version"`
	Count         int           `json:"count"`
	Valid         int           `json:"valid"`
	Invalid       int           `json:"invalid"`
	Results       []batchResult `json:"results"`
	ElapsedNs     int64         `json:"elapsed_ns"`
}

// handleValidateBatch runs POST /v1/validate-batch/{schema}: the body is
// {"documents": ["<xml…>", …]} and the response carries one verdict per
// document, index-aligned. The whole set costs ONE admission — one
// shedding decision, one concurrency slot, one deadline — which is the
// point: at high document rates the per-request overhead (semaphore,
// headers, JSON framing) dominates small validations, and batching
// amortizes it the way validator.ValidateBatch already does in-process.
// Inside the slot the documents fan out across the validator's worker
// pool, so a batch uses the cores a single document cannot.
//
// The per-document verdict contract matches /v1/validate: a malformed
// document is valid:false with the parse error as its violation, never a
// request-level error. Request-level failures are the transport ones:
// unknown schema (404), malformed JSON or an empty/oversized set (400),
// body over the cap (413), shed (429), deadline (504).
func (s *Server) handleValidateBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("schema")
	entry, ok := s.reg.Get(name)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown schema %q", name)})
		return
	}
	series := s.metrics.Series(name, "batch")
	start := time.Now()
	var results []batchResult
	out, ok := s.withWorker(w, r, series, func(ctx context.Context, body io.Reader) outcome {
		data, err := io.ReadAll(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return outcome{code: http.StatusRequestEntityTooLarge,
					errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)}
			}
			return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("reading request body: %v", err)}
		}
		var req batchRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("batch body is not JSON: %v", err)}
		}
		if len(req.Documents) == 0 {
			return outcome{code: http.StatusBadRequest, errMsg: "batch carries no documents"}
		}
		if len(req.Documents) > s.maxBatch {
			return outcome{code: http.StatusBadRequest,
				errMsg: fmt.Sprintf("batch carries %d documents, limit is %d", len(req.Documents), s.maxBatch)}
		}
		if ctx.Err() != nil {
			return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
		}
		results = s.runBatch(ctx, entry.Validator, req.Documents)
		if results == nil {
			return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
		}
		return outcome{}
	})
	if !ok {
		return
	}
	if out.code != 0 {
		series.Errors.Inc()
		s.writeJSON(w, out.code, errorResponse{Error: out.errMsg})
		return
	}
	series.Requests.Inc()
	series.Latency.Observe(time.Since(start))
	resp := batchResponse{
		Schema:        entry.Name,
		SchemaVersion: entry.Version,
		Count:         len(results),
		Results:       results,
		ElapsedNs:     int64(time.Since(start)),
	}
	for _, res := range results {
		if res.Valid {
			resp.Valid++
		} else {
			resp.Invalid++
		}
	}
	// Invalid meters documents, not requests: a batch of 100 with 3 bad
	// documents moves the series by 3, the same load 100 per-doc requests
	// would have produced.
	series.Invalid.Add(int64(resp.Invalid))
	s.writeJSON(w, http.StatusOK, resp)
}

// runBatch parses the documents and fans them through the validator's
// batch worker pool. Malformed documents get their parse error as the
// verdict (per-document parity with /v1/validate) without occupying a
// pool slot. A nil return means the context expired mid-batch.
func (s *Server) runBatch(ctx context.Context, v *validator.Validator, sources []string) []batchResult {
	results := make([]batchResult, len(sources))
	docs := make([]*dom.Document, 0, len(sources))
	docIdx := make([]int, 0, len(sources))
	for i, src := range sources {
		doc, perr := dom.Parse([]byte(src))
		if perr != nil {
			results[i] = batchResult{Violations: []violationJSON{{Path: "/", Msg: perr.Error()}}}
			continue
		}
		docs = append(docs, doc)
		docIdx = append(docIdx, i)
	}
	verdicts, err := v.ValidateBatchContext(ctx, docs)
	for _, doc := range docs {
		doc.Release()
	}
	if err != nil {
		return nil
	}
	for j, res := range verdicts {
		br := batchResult{Valid: res.OK()}
		for _, viol := range res.Violations {
			br.Violations = append(br.Violations, violationJSON{Path: viol.Path, Msg: viol.Msg})
		}
		results[docIdx[j]] = br
	}
	return results
}
