package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/schemas"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestCompatEndpoint walks a schema through an evolution and reads the
// classification back through GET /v1/schemas/{name}/compat.
func TestCompatEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "po.xsd")
	stamp := time.Now().Add(-time.Hour)
	if err := os.WriteFile(path, []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(dir, nil)
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Registry: reg}).Handler())
	defer ts.Close()

	var cr compatResponse
	if code := getJSON(t, ts.URL+"/v1/schemas/po/compat", &cr); code != http.StatusOK {
		t.Fatalf("first-version compat: status %d", code)
	}
	if cr.SchemaVersion != 1 || cr.Level != "" || cr.Message == "" {
		t.Errorf("first-version compat = %+v, want message and no level", cr)
	}

	// Backward-compatible evolution: optional element appended.
	evolved := strings.Replace(schemas.PurchaseOrderXSD,
		`<xsd:element name="items" type="Items"/>`,
		`<xsd:element name="items" type="Items"/>
      <xsd:element name="priority" type="xsd:string" minOccurs="0"/>`, 1)
	if err := os.WriteFile(path, []byte(evolved), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp.Add(time.Minute), stamp.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}

	cr = compatResponse{}
	if code := getJSON(t, ts.URL+"/v1/schemas/po/compat", &cr); code != http.StatusOK {
		t.Fatalf("evolved compat: status %d", code)
	}
	if cr.SchemaVersion != 2 || cr.Level != "backward" || !cr.Backward || cr.Forward {
		t.Errorf("evolved compat = %+v, want backward level at version 2", cr)
	}
	if len(cr.ForwardBreaks) == 0 {
		t.Error("forward breaks empty; the added element should be reported")
	}

	// The schema listing carries the classification and closure size too.
	var sr schemasResponse
	if code := getJSON(t, ts.URL+"/v1/schemas", &sr); code != http.StatusOK {
		t.Fatalf("schemas listing: status %d", code)
	}
	if len(sr.Schemas) != 1 || sr.Schemas[0].Compat != "backward" || sr.Schemas[0].Files != 1 {
		t.Errorf("schema listing = %+v, want compat=backward files=1", sr.Schemas)
	}

	if code := getJSON(t, ts.URL+"/v1/schemas/nosuch/compat", &cr); code != http.StatusNotFound {
		t.Errorf("unknown schema compat: status %d, want 404", code)
	}
}
