package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dom"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/soap"
	"repro/internal/validator"
)

// Config tunes the validation service. The zero value of every field
// selects a production-safe default; only Registry is required.
type Config struct {
	// Registry resolves schema names to compiled validators. Required.
	Registry *registry.Registry
	// Metrics receives per-request measurements. Nil allocates a private
	// one (exported at /metrics either way).
	Metrics *obs.Metrics
	// Logger receives structured request logs. Nil disables logging.
	Logger *slog.Logger
	// MaxBodyBytes caps request bodies (http.MaxBytesReader). Zero means
	// 16 MiB. Oversized bodies get 413 without being read to the end.
	MaxBodyBytes int64
	// MaxConcurrent bounds simultaneously-running validations; arrivals
	// beyond it are shed immediately with 429 + Retry-After rather than
	// queued (queueing under overload only converts overload into
	// latency). Zero means 4 × GOMAXPROCS — validation is CPU-bound, so
	// a small multiple keeps cores busy through the read/parse phases
	// without letting work pile up.
	MaxConcurrent int
	// RequestTimeout is the per-request validation deadline. Zero means
	// 30 seconds.
	RequestTimeout time.Duration
	// MaxBatchDocs caps how many documents one /v1/validate-batch request
	// may carry. Zero means 256. The batch endpoint amortizes admission
	// and shedding over a document set, so the cap is what keeps one
	// request from monopolizing a concurrency slot indefinitely.
	MaxBatchDocs int
	// DisableBufferPool turns off the pooled response-encoding buffers and
	// encodes verdict JSON straight to the connection (the pre-pooling
	// behavior). Exists for benchmarks that price the pooling itself.
	DisableBufferPool bool
}

// Server is the HTTP validation service: request routing, body caps,
// deadlines, load shedding and metrics around the registry's validators.
// Create one with New and mount Handler on an http.Server.
type Server struct {
	reg       *registry.Registry
	metrics   *obs.Metrics
	log       *slog.Logger
	maxBody   int64
	timeout   time.Duration
	maxBatch  int
	noBufPool bool
	sem       chan struct{}
	mux       *http.ServeMux
	// soapSvcs routes /v1/soap/{service}; populated by RegisterSOAP
	// before serving starts, read-only afterwards.
	soapSvcs map[string]*soap.Service
	// draining flips when the process has been told to shut down:
	// /healthz answers 503 with Draining: true so load balancers and
	// cluster peers stop routing here before the listener closes.
	draining atomic.Bool
}

// New assembles the service from cfg.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("server: Config.Registry is required")
	}
	m := cfg.Metrics
	if m == nil {
		m = &obs.Metrics{}
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 16 << 20
	}
	maxConc := cfg.MaxConcurrent
	if maxConc <= 0 {
		maxConc = 4 * runtime.GOMAXPROCS(0)
	}
	timeout := cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	maxBatch := cfg.MaxBatchDocs
	if maxBatch <= 0 {
		maxBatch = 256
	}
	s := &Server{
		reg:       cfg.Registry,
		metrics:   m,
		log:       cfg.Logger,
		maxBody:   maxBody,
		timeout:   timeout,
		maxBatch:  maxBatch,
		noBufPool: cfg.DisableBufferPool,
		sem:       make(chan struct{}, maxConc),
		mux:       http.NewServeMux(),
		soapSvcs:  map[string]*soap.Service{},
	}
	s.mux.HandleFunc("POST /v1/validate/{schema}", s.handleValidate)
	s.mux.HandleFunc("POST /v1/validate-batch/{schema}", s.handleValidateBatch)
	s.mux.HandleFunc("POST /v1/decode/{schema}", s.handleDecode)
	s.mux.HandleFunc("POST /v1/encode/{schema}", s.handleEncode)
	s.mux.HandleFunc("GET /v1/schemas", s.handleSchemas)
	s.mux.HandleFunc("GET /v1/schemas/{schema}/compat", s.handleCompat)
	s.mux.HandleFunc("POST /v1/soap/{service}", s.handleSOAP)
	s.mux.HandleFunc("GET /v1/soap/{service}", s.handleSOAPWSDL)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Metrics returns the server's metrics registry (the one /metrics
// exports), so the binary can feed reload counters into it.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Handler returns the root handler: the route mux wrapped in request
// logging.
func (s *Server) Handler() http.Handler {
	if s.log == nil {
		return s.mux
	}
	return s.logging(s.mux)
}

// statusWriter records the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer (the
// deadline-poke in handleValidate needs the real connection).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"remote", r.RemoteAddr,
			"dur_ms", float64(time.Since(start).Microseconds())/1000)
	})
}

// --- response shapes ---

type violationJSON struct {
	Path string `json:"path"`
	Msg  string `json:"msg"`
}

type validateResponse struct {
	Schema        string          `json:"schema"`
	SchemaVersion int             `json:"schema_version"`
	Mode          string          `json:"mode"`
	Valid         bool            `json:"valid"`
	Violations    []violationJSON `json:"violations,omitempty"`
	ElapsedNs     int64           `json:"elapsed_ns"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// respBuffers pools the scratch buffers responses are encoded into
// before they hit the wire, so the serving hot path stops paying one
// buffer allocation (and a chunked-encoding response) per request.
var respBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuffer is the largest buffer returned to the pool; a rare
// huge verdict (thousands of violations) must not pin its memory there.
const maxPooledBuffer = 1 << 20

// writeJSON encodes v through a pooled buffer, which also yields an
// exact Content-Length (single-write responses, no chunked framing).
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	if s.noBufPool {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
		return
	}
	buf := respBuffers.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Our own response structs cannot fail to encode; if one ever
		// does, a 500 beats a half-written body.
		respBuffers.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	w.Write(buf.Bytes()) //nolint:errcheck // client gone; nothing to do
	if buf.Cap() <= maxPooledBuffer {
		respBuffers.Put(buf)
	}
}

// outcome is what the worker goroutine reports back to the handler.
// code/errMsg are set for failures that never reached a verdict; data is
// the payload for decode (canonical JSON) and encode (marshaled XML).
type outcome struct {
	res    *validator.Result
	data   []byte
	code   int
	errMsg string
}

// withWorker runs fn against the request body inside a reserved
// concurrency slot, with the request deadline enforced. It owns the
// tricky parts shared by validate/decode/encode: load shedding (written
// as 429 before the body is touched, reported via ok=false), running fn
// in a worker goroutine so the handler stays responsive to the deadline
// while the worker may be parked in a body read, the read-deadline poke
// that unblocks such a worker, and semaphore release only when fn has
// actually stopped — shedding stays honest under slowloris load.
func (s *Server) withWorker(w http.ResponseWriter, r *http.Request, series *obs.Series,
	fn func(ctx context.Context, body io.Reader) outcome) (outcome, bool) {
	select {
	case s.sem <- struct{}{}:
	default:
		series.Shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "server at concurrency limit, retry later"})
		return outcome{}, false
	}
	s.metrics.InFlight.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	body := http.MaxBytesReader(w, r.Body, s.maxBody)

	outc := make(chan outcome, 1)
	go func() {
		defer func() {
			s.metrics.InFlight.Dec()
			<-s.sem
			if p := recover(); p != nil {
				outc <- outcome{code: http.StatusInternalServerError, errMsg: fmt.Sprintf("worker panic: %v", p)}
			}
		}()
		outc <- fn(ctx, body)
	}()

	select {
	case out := <-outc:
		return out, true
	case <-ctx.Done():
		// Deadline while the worker may be parked in a body Read. That
		// Read must not outlive this handler — net/http's connection
		// bookkeeping deadlocks if r.Body is still being read when
		// ServeHTTP returns — so poke the connection's read deadline to
		// fail the pending Read, then collect the worker. It surfaces
		// within microseconds; whatever it produced, the request is
		// answered as timed out.
		http.NewResponseController(w).SetReadDeadline(time.Now()) //nolint:errcheck // best effort; h1 and h2 both support it
		<-outc
		return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}, true
	}
}

// handleValidate runs POST /v1/validate/{schema}[?stream=1|?parallel=1].
//
// ?parallel=1 selects the intra-document parallel walk for bodies at or
// above parallelThreshold (smaller documents validate sequentially —
// fan-out overhead would dominate). The verdict is byte-identical to the
// sequential mode by construction. ?stream=1 takes precedence: the
// parallel walk needs the whole document.
//
// The verdict contract matches the library: a well-formed document that
// violates the schema is a 200 with valid:false (validation succeeded,
// the document didn't), and — like validator.ValidateBytes — a malformed
// document is a 200 with valid:false carrying the parse error as its one
// violation. Non-200s mean the service couldn't produce a verdict:
// unknown schema (404), body over the cap (413), shed load (429),
// deadline (504).
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("schema")
	entry, ok := s.reg.Get(name)
	if !ok {
		// No metrics series for unknown names: the series key space must
		// stay bounded by the registry, not by what clients probe for.
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown schema %q", name)})
		return
	}
	mode := "dom"
	switch {
	case r.URL.Query().Get("stream") == "1":
		mode = "stream"
	case r.URL.Query().Get("parallel") == "1":
		mode = "parallel"
	}
	series := s.metrics.Series(name, mode)
	start := time.Now()
	out, ok := s.withWorker(w, r, series, func(ctx context.Context, body io.Reader) outcome {
		return s.runValidation(ctx, entry, mode, body)
	})
	if !ok {
		return
	}
	if out.code != 0 {
		series.Errors.Inc()
		s.writeJSON(w, out.code, errorResponse{Error: out.errMsg})
		return
	}
	series.Requests.Inc()
	series.Latency.Observe(time.Since(start))
	if !out.res.OK() {
		series.Invalid.Inc()
	}
	resp := validateResponse{
		Schema:        entry.Name,
		SchemaVersion: entry.Version,
		Mode:          mode,
		Valid:         out.res.OK(),
		ElapsedNs:     int64(time.Since(start)),
	}
	for _, v := range out.res.Violations {
		resp.Violations = append(resp.Violations, violationJSON{Path: v.Path, Msg: v.Msg})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// capTracker notes whether a read failed because http.MaxBytesReader
// tripped. The streaming decoder folds reader errors into its parse
// verdict, so without this the DOM and stream paths would answer an
// oversized body differently (413 vs a violation quoting the transport
// error); the tracker lets the stream path give the same 413.
type capTracker struct {
	r   io.Reader
	hit bool
}

func (c *capTracker) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.hit = true
		}
	}
	return n, err
}

// runValidation produces a verdict through the requested path.
func (s *Server) runValidation(ctx context.Context, entry *registry.Entry, mode string, body io.Reader) outcome {
	if mode == "stream" {
		tracked := &capTracker{r: body}
		res, err := entry.Stream.ValidateReaderContext(ctx, tracked)
		if tracked.hit {
			return outcome{code: http.StatusRequestEntityTooLarge,
				errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", s.maxBody)}
		}
		if err != nil {
			// Deadline/cancel mid-stream; the handler's select arm has
			// (or will) put the 504 on the wire.
			return outcome{code: http.StatusGatewayTimeout, errMsg: "validation deadline exceeded"}
		}
		return outcome{res: res}
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return outcome{code: http.StatusRequestEntityTooLarge,
				errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)}
		}
		return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("reading request body: %v", err)}
	}
	if ctx.Err() != nil {
		return outcome{code: http.StatusGatewayTimeout, errMsg: "validation deadline exceeded"}
	}
	doc, perr := dom.Parse(data)
	if perr != nil {
		// Library parity (validator.ValidateBytes): malformedness is the
		// verdict, not a transport error.
		return outcome{res: &validator.Result{Violations: []validator.Violation{{Path: "/", Msg: perr.Error()}}}}
	}
	var res *validator.Result
	if mode == "parallel" && len(data) >= parallelThreshold {
		res = entry.Validator.ParallelValidate(doc, 0)
	} else {
		res = entry.Validator.ValidateDocument(doc)
	}
	doc.Release()
	return outcome{res: res}
}

// parallelThreshold is the body size below which ?parallel=1 quietly uses
// the sequential walk: fan-out and join overhead beat the win on small
// documents, and the verdicts are identical either way.
const parallelThreshold = 1 << 20

// decodeResponse extends the validation verdict with the decoded
// document as canonical JSON (present only when the document is valid).
type decodeResponse struct {
	Schema        string          `json:"schema"`
	SchemaVersion int             `json:"schema_version"`
	Mode          string          `json:"mode"`
	Valid         bool            `json:"valid"`
	Violations    []violationJSON `json:"violations,omitempty"`
	Data          json.RawMessage `json:"data,omitempty"`
	ElapsedNs     int64           `json:"elapsed_ns"`
}

// handleDecode runs POST /v1/decode/{schema}[?stream=1]: validate and
// decode in one pass, answering the verdict plus — when valid — the
// document as canonical JSON. The status-code contract matches
// /v1/validate: an invalid document is a 200 with valid:false and no
// data, not an error.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("schema")
	entry, ok := s.reg.Get(name)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown schema %q", name)})
		return
	}
	mode := "decode-dom"
	if r.URL.Query().Get("stream") == "1" {
		mode = "decode-stream"
	}
	series := s.metrics.Series(name, mode)
	start := time.Now()
	out, ok := s.withWorker(w, r, series, func(ctx context.Context, body io.Reader) outcome {
		return s.runDecode(ctx, entry, mode, body)
	})
	if !ok {
		return
	}
	if out.code != 0 {
		series.Errors.Inc()
		s.writeJSON(w, out.code, errorResponse{Error: out.errMsg})
		return
	}
	series.Requests.Inc()
	series.Latency.Observe(time.Since(start))
	if !out.res.OK() {
		series.Invalid.Inc()
	}
	resp := decodeResponse{
		Schema:        entry.Name,
		SchemaVersion: entry.Version,
		Mode:          mode,
		Valid:         out.res.OK(),
		Data:          out.data,
		ElapsedNs:     int64(time.Since(start)),
	}
	for _, v := range out.res.Violations {
		resp.Violations = append(resp.Violations, violationJSON{Path: v.Path, Msg: v.Msg})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// runDecode produces a verdict and, when valid, the canonical JSON.
func (s *Server) runDecode(ctx context.Context, entry *registry.Entry, mode string, body io.Reader) outcome {
	if mode == "decode-stream" {
		tracked := &capTracker{r: body}
		v, res, err := entry.Binder.DecodeReader(ctx, tracked)
		if tracked.hit {
			return outcome{code: http.StatusRequestEntityTooLarge,
				errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", s.maxBody)}
		}
		if err != nil {
			if ctx.Err() != nil {
				return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
			}
			return outcome{code: http.StatusInternalServerError, errMsg: err.Error()}
		}
		out := outcome{res: res}
		if v != nil {
			out.data = entry.Binder.JSON(v)
		}
		return out
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return outcome{code: http.StatusRequestEntityTooLarge,
				errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)}
		}
		return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("reading request body: %v", err)}
	}
	if ctx.Err() != nil {
		return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
	}
	v, res := entry.Binder.DecodeBytes(data)
	out := outcome{res: res}
	if v != nil {
		out.data = entry.Binder.JSON(v)
	}
	return out
}

// handleEncode runs POST /v1/encode/{schema}: the body is canonical JSON
// (the /v1/decode projection); the response is the marshaled, re-validated
// XML document. Malformed or unmappable JSON is a 400; JSON that maps to
// a schema-invalid document is a 422 carrying the first violation.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("schema")
	entry, ok := s.reg.Get(name)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown schema %q", name)})
		return
	}
	series := s.metrics.Series(name, "encode")
	start := time.Now()
	out, ok := s.withWorker(w, r, series, func(ctx context.Context, body io.Reader) outcome {
		return s.runEncode(ctx, entry, body)
	})
	if !ok {
		return
	}
	if out.code != 0 {
		series.Errors.Inc()
		s.writeJSON(w, out.code, errorResponse{Error: out.errMsg})
		return
	}
	series.Requests.Inc()
	series.Latency.Observe(time.Since(start))
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("X-Schema-Version", fmt.Sprintf("%d", entry.Version))
	w.WriteHeader(http.StatusOK)
	w.Write(out.data) //nolint:errcheck // client gone; nothing to do
}

// runEncode maps canonical JSON back to schema-valid XML.
func (s *Server) runEncode(ctx context.Context, entry *registry.Entry, body io.Reader) outcome {
	data, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return outcome{code: http.StatusRequestEntityTooLarge,
				errMsg: fmt.Sprintf("request body exceeds the %d-byte limit", tooBig.Limit)}
		}
		return outcome{code: http.StatusBadRequest, errMsg: fmt.Sprintf("reading request body: %v", err)}
	}
	if ctx.Err() != nil {
		return outcome{code: http.StatusGatewayTimeout, errMsg: "request deadline exceeded"}
	}
	v, err := entry.Binder.FromJSON(data)
	if err != nil {
		return outcome{code: http.StatusBadRequest, errMsg: err.Error()}
	}
	xml, err := entry.Binder.Marshal(v)
	if err != nil {
		return outcome{code: http.StatusUnprocessableEntity, errMsg: err.Error()}
	}
	return outcome{data: xml}
}

// --- introspection endpoints ---

type schemaInfo struct {
	Name     string    `json:"name"`
	Version  int       `json:"version"`
	LoadedAt time.Time `json:"loaded_at"`
	Path     string    `json:"path"`
	// Files is the size of the dependency closure (root plus every
	// included/imported document).
	Files int `json:"files"`
	// Compat is the classification of this version against the previous
	// one; empty for a first version.
	Compat string `json:"compat,omitempty"`
}

type schemasResponse struct {
	Generation int64             `json:"generation"`
	Schemas    []schemaInfo      `json:"schemas"`
	LoadErrors map[string]string `json:"load_errors,omitempty"`
}

func (s *Server) handleSchemas(w http.ResponseWriter, _ *http.Request) {
	resp := schemasResponse{Generation: s.reg.Generation(), Schemas: []schemaInfo{}}
	for _, e := range s.reg.List() {
		info := schemaInfo{
			Name: e.Name, Version: e.Version, LoadedAt: e.LoadedAt, Path: e.Path,
			Files: len(e.Files),
		}
		if e.Compat != nil {
			info.Compat = e.Compat.Level.String()
		}
		resp.Schemas = append(resp.Schemas, info)
	}
	if errs := s.reg.Errors(); len(errs) > 0 {
		resp.LoadErrors = errs
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// compatResponse is the payload of GET /v1/schemas/{schema}/compat: the
// compatibility classification of the serving version against the one it
// replaced. A first version has no predecessor, so level is absent and
// message explains why.
type compatResponse struct {
	Schema         string   `json:"schema"`
	SchemaVersion  int      `json:"schema_version"`
	Level          string   `json:"level,omitempty"`
	Backward       bool     `json:"backward"`
	Forward        bool     `json:"forward"`
	BackwardBreaks []string `json:"backward_breaks,omitempty"`
	ForwardBreaks  []string `json:"forward_breaks,omitempty"`
	Message        string   `json:"message,omitempty"`
	// LoadError surfaces a pending load failure for the name — including
	// a gate rejection, in which case the served version predates it.
	LoadError string `json:"load_error,omitempty"`
}

// handleCompat reports how the served version of a schema compares to
// its predecessor (backward / forward / full / none), with the concrete
// break reasons. 404 for unknown names.
func (s *Server) handleCompat(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("schema")
	entry, ok := s.reg.Get(name)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown schema %q", name)})
		return
	}
	resp := compatResponse{
		Schema:        entry.Name,
		SchemaVersion: entry.Version,
		LoadError:     s.reg.Errors()[name],
	}
	if entry.Compat == nil {
		resp.Message = "first loaded version; no previous version to compare against"
	} else {
		resp.Level = entry.Compat.Level.String()
		resp.Backward = entry.Compat.Backward()
		resp.Forward = entry.Compat.Forward()
		resp.BackwardBreaks = entry.Compat.BackwardBreaks
		resp.ForwardBreaks = entry.Compat.ForwardBreaks
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type healthResponse struct {
	Status   string `json:"status"`
	Schemas  int    `json:"schemas"`
	Draining bool   `json:"draining,omitempty"`
}

// SetDraining flips the drain announcement: while set, /healthz answers
// 503 with a "Draining: true" header so load balancers and cluster
// peers stop routing new work here, while every other endpoint keeps
// serving — the graceful-shutdown sequence announces first, then stops
// the listener, so requests in flight when the announcement lands still
// finish normally.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the drain announcement is active.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleHealthz reports liveness plus a degraded flag when the registry
// serves nothing (an empty or unreadable schema directory): a load
// balancer should stop routing to an instance that can't validate
// anything. A draining process answers 503 with Draining: true — the
// same contract, announced before connections close instead of after.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	n := len(s.reg.List())
	if s.draining.Load() {
		w.Header().Set("Draining", "true")
		s.writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining", Schemas: n, Draining: true})
		return
	}
	if n == 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "no schemas loaded", Schemas: 0})
		return
	}
	s.writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Schemas: n})
}

// handleMetrics exports the metrics snapshot enriched with the registry's
// published generation and schema count, so scrapers can correlate metric
// movements with hot reloads.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.metrics.Snapshot()
	snap.Registry = &obs.RegistryInfo{Generation: s.reg.Generation(), Schemas: len(s.reg.List())}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // client gone; nothing to do
}
