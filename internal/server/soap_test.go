package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/schemas"
	"repro/internal/soap"
	"repro/internal/wsdl"
)

// newSOAPServer mounts the Calc corpus service (with a real Add handler)
// on a test server.
func newSOAPServer(t *testing.T, cfg Config) (string, *Server) {
	t.Helper()
	ts, s := newTestServer(t, cfg)
	d, err := wsdl.Parse([]byte(schemas.CalcWSDL), nil)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := soap.NewService(d, "Calc")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("Add", func(_ context.Context, _ *bind.Value) (*bind.Value, error) {
		return svc.Binder().FromJSON([]byte(`{"$element":"AddResponse","sum":42}`))
	}); err != nil {
		t.Fatal(err)
	}
	s.RegisterSOAP(svc)
	return ts.URL, s
}

func postSOAP(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/xml; charset=utf-8", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data
}

const addEnvelope = `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body><c:AddRequest xmlns:c="urn:calc"><c:a>40</c:a><c:b>2</c:b></c:AddRequest></e:Body></e:Envelope>`

func TestSOAPEndpoint(t *testing.T) {
	base, s := newSOAPServer(t, Config{})
	url := base + "/v1/soap/Calc"

	code, ctype, body := postSOAP(t, url, addEnvelope)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.HasPrefix(ctype, "text/xml") {
		t.Errorf("content type %q", ctype)
	}
	if !strings.Contains(string(body), ">42<") {
		t.Errorf("response: %s", body)
	}

	// Schema-invalid request: a Fault with violations, 400 — never a 500.
	bad := strings.Replace(addEnvelope, "<c:a>40</c:a>", "<c:a>forty</c:a>", 1)
	code, _, body = postSOAP(t, url, bad)
	if code != 400 {
		t.Fatalf("invalid request: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "Fault") || !strings.Contains(string(body), "violation") {
		t.Errorf("fault body: %s", body)
	}

	// Unimplemented operation: a Fault, 501.
	sub := strings.Replace(strings.Replace(addEnvelope, "AddRequest", "SubtractRequest", 2), "c:AddRequest", "c:SubtractRequest", 1)
	code, _, body = postSOAP(t, url, sub)
	if code != 501 || !strings.Contains(string(body), "Fault") {
		t.Fatalf("unimplemented op: status %d: %s", code, body)
	}

	// Unknown service: JSON 404 (transport-level, no envelope reached a
	// service).
	code, ctype, _ = postSOAP(t, base+"/v1/soap/Nope", addEnvelope)
	if code != 404 || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("unknown service: %d %s", code, ctype)
	}

	// Metrics: per-service/operation series appeared.
	snap := s.Metrics().Snapshot()
	found := map[string]bool{}
	for _, series := range snap.Series {
		if series.Schema == "soap:Calc" {
			found[series.Endpoint] = true
		}
	}
	if !found["op:Add"] || !found["op:Subtract"] {
		t.Errorf("per-operation series missing: %v", found)
	}
}

func TestSOAPWSDLEcho(t *testing.T) {
	base, _ := newSOAPServer(t, Config{})
	resp, err := http.Get(base + "/v1/soap/Calc")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if string(data) != schemas.CalcWSDL {
		t.Error("WSDL echo is not byte-identical to the source document")
	}
}

// TestSOAPBodyCap keeps the transport-level contract: an oversized
// envelope is a 413 before dispatch, like every other endpoint.
func TestSOAPBodyCap(t *testing.T) {
	base, _ := newSOAPServer(t, Config{MaxBodyBytes: 512})
	big := strings.Replace(addEnvelope, "<c:a>40</c:a>",
		"<c:a>40</c:a><!-- "+strings.Repeat("x", 2048)+" -->", 1)
	code, ctype, _ := postSOAP(t, base+"/v1/soap/Calc", big)
	if code != http.StatusRequestEntityTooLarge || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("oversized envelope: %d %s", code, ctype)
	}
}
