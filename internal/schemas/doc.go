// Package schemas embeds the schema and instance documents used throughout
// the paper, so tests, examples and benchmarks all exercise the exact
// artifacts of the publication.
//
// # Role in the pipeline
//
// schemas is pure data feeding every stage of the pipeline (xsd parse →
// normalize → contentmodel → codegen/vdom → validator → pxml): the
// purchase-order schema and document of Figures 1–3, the derivation and
// evolution schemas of §3, and their invalid twins for the negative
// tests.
//
// # Concurrency
//
// Everything here is a string constant — immutable and trivially safe to
// read from any goroutine.
package schemas
