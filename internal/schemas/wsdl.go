package schemas

// CalcWSDL is the calculator service description: SOAP 1.1, one embedded
// schema, two request/response operations and a one-way notification. It
// is the small end of the WSDL corpus — the wire format analogue of the
// purchase-order schema's role for validation.
const CalcWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="Calc" targetNamespace="urn:calc:svc"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:tns="urn:calc:svc"
    xmlns:c="urn:calc">
  <wsdl:types>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               targetNamespace="urn:calc" elementFormDefault="qualified">
      <xs:complexType name="Pair">
        <xs:sequence>
          <xs:element name="a" type="xs:int"/>
          <xs:element name="b" type="xs:int"/>
        </xs:sequence>
      </xs:complexType>
      <xs:element name="AddRequest" type="c:Pair"/>
      <xs:element name="AddResponse">
        <xs:complexType>
          <xs:sequence><xs:element name="sum" type="xs:int"/></xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="SubtractRequest" type="c:Pair"/>
      <xs:element name="SubtractResponse">
        <xs:complexType>
          <xs:sequence><xs:element name="difference" type="xs:int"/></xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="Ping" type="xs:string"/>
    </xs:schema>
  </wsdl:types>
  <wsdl:message name="AddIn"><wsdl:part name="body" element="c:AddRequest"/></wsdl:message>
  <wsdl:message name="AddOut"><wsdl:part name="body" element="c:AddResponse"/></wsdl:message>
  <wsdl:message name="SubtractIn"><wsdl:part name="body" element="c:SubtractRequest"/></wsdl:message>
  <wsdl:message name="SubtractOut"><wsdl:part name="body" element="c:SubtractResponse"/></wsdl:message>
  <wsdl:message name="PingIn"><wsdl:part name="body" element="c:Ping"/></wsdl:message>
  <wsdl:portType name="CalcPort">
    <wsdl:operation name="Add">
      <wsdl:input message="tns:AddIn"/>
      <wsdl:output message="tns:AddOut"/>
    </wsdl:operation>
    <wsdl:operation name="Subtract">
      <wsdl:input message="tns:SubtractIn"/>
      <wsdl:output message="tns:SubtractOut"/>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input message="tns:PingIn"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="CalcBinding" type="tns:CalcPort">
    <soap:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="Add">
      <soap:operation soapAction="urn:calc:add"/>
      <wsdl:input><soap:body use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="Subtract">
      <soap:operation soapAction="urn:calc:subtract"/>
      <wsdl:input><soap:body use="literal"/></wsdl:input>
      <wsdl:output><soap:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="Ping">
      <wsdl:input><soap:body use="literal"/></wsdl:input>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="Calc">
    <wsdl:port name="CalcSOAP" binding="tns:CalcBinding">
      <soap:address location="http://localhost:8080/v1/soap/Calc"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>
`

// OrdersWSDL is the order-management service description: SOAP 1.2 and
// two embedded schemas, the order elements importing the shared types
// namespace with a schemaLocation-less xs:import — resolved through the
// in-memory namespace catalog exactly like a registry directory's. The
// payload shapes follow the paper's purchase-order vocabulary.
const OrdersWSDL = `<?xml version="1.0"?>
<wsdl:definitions name="Orders" targetNamespace="urn:orders:svc"
    xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap12="http://schemas.xmlsoap.org/wsdl/soap12/"
    xmlns:tns="urn:orders:svc"
    xmlns:o="urn:orders">
  <wsdl:types>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               targetNamespace="urn:orders:types" elementFormDefault="qualified">
      <xs:complexType name="Address">
        <xs:sequence>
          <xs:element name="name" type="xs:string"/>
          <xs:element name="street" type="xs:string"/>
          <xs:element name="city" type="xs:string"/>
          <xs:element name="zip" type="xs:decimal"/>
        </xs:sequence>
      </xs:complexType>
      <xs:simpleType name="Status">
        <xs:restriction base="xs:string">
          <xs:enumeration value="pending"/>
          <xs:enumeration value="shipped"/>
          <xs:enumeration value="cancelled"/>
        </xs:restriction>
      </xs:simpleType>
      <xs:simpleType name="SKU">
        <xs:restriction base="xs:string">
          <xs:pattern value="\d{3}-[A-Z]{2}"/>
        </xs:restriction>
      </xs:simpleType>
    </xs:schema>
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
               xmlns:t="urn:orders:types"
               targetNamespace="urn:orders" elementFormDefault="qualified">
      <xs:import namespace="urn:orders:types"/>
      <xs:element name="SubmitOrderRequest">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="shipTo" type="t:Address"/>
            <xs:element name="item" maxOccurs="unbounded">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="sku" type="t:SKU"/>
                  <xs:element name="quantity" type="xs:positiveInteger"/>
                </xs:sequence>
              </xs:complexType>
            </xs:element>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="SubmitOrderResponse">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="orderId" type="xs:string"/>
            <xs:element name="status" type="t:Status"/>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="OrderStatusRequest">
        <xs:complexType>
          <xs:sequence><xs:element name="orderId" type="xs:string"/></xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="OrderStatusResponse">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="orderId" type="xs:string"/>
            <xs:element name="status" type="t:Status"/>
            <xs:element name="note" type="xs:string" minOccurs="0" nillable="true"/>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:element name="CancelOrder">
        <xs:complexType>
          <xs:sequence><xs:element name="orderId" type="xs:string"/></xs:sequence>
        </xs:complexType>
      </xs:element>
    </xs:schema>
  </wsdl:types>
  <wsdl:message name="SubmitIn"><wsdl:part name="body" element="o:SubmitOrderRequest"/></wsdl:message>
  <wsdl:message name="SubmitOut"><wsdl:part name="body" element="o:SubmitOrderResponse"/></wsdl:message>
  <wsdl:message name="StatusIn"><wsdl:part name="body" element="o:OrderStatusRequest"/></wsdl:message>
  <wsdl:message name="StatusOut"><wsdl:part name="body" element="o:OrderStatusResponse"/></wsdl:message>
  <wsdl:message name="CancelIn"><wsdl:part name="body" element="o:CancelOrder"/></wsdl:message>
  <wsdl:portType name="OrdersPort">
    <wsdl:operation name="SubmitOrder">
      <wsdl:input message="tns:SubmitIn"/>
      <wsdl:output message="tns:SubmitOut"/>
    </wsdl:operation>
    <wsdl:operation name="OrderStatus">
      <wsdl:input message="tns:StatusIn"/>
      <wsdl:output message="tns:StatusOut"/>
    </wsdl:operation>
    <wsdl:operation name="CancelOrder">
      <wsdl:input message="tns:CancelIn"/>
    </wsdl:operation>
  </wsdl:portType>
  <wsdl:binding name="OrdersBinding" type="tns:OrdersPort">
    <soap12:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
    <wsdl:operation name="SubmitOrder">
      <soap12:operation soapAction="urn:orders:submit"/>
      <wsdl:input><soap12:body use="literal"/></wsdl:input>
      <wsdl:output><soap12:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="OrderStatus">
      <wsdl:input><soap12:body use="literal"/></wsdl:input>
      <wsdl:output><soap12:body use="literal"/></wsdl:output>
    </wsdl:operation>
    <wsdl:operation name="CancelOrder">
      <wsdl:input><soap12:body use="literal"/></wsdl:input>
    </wsdl:operation>
  </wsdl:binding>
  <wsdl:service name="Orders">
    <wsdl:port name="OrdersSOAP" binding="tns:OrdersBinding">
      <soap12:address location="http://localhost:8080/v1/soap/Orders"/>
    </wsdl:port>
  </wsdl:service>
</wsdl:definitions>
`
