package schemas

// PurchaseOrderXSD is the purchase order schema of the paper's Figures 2
// and 3 (from the XML Schema Primer): purchaseOrder/comment global
// elements, PurchaseOrderType, USAddress, Items with an anonymous item
// type, an anonymous quantity restriction, and the SKU pattern type.
const PurchaseOrderXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:annotation>
    <xsd:documentation xml:lang="en">
      Purchase order schema for Example.com.
      Copyright 2000 Example.com. All rights reserved.
    </xsd:documentation>
  </xsd:annotation>

  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>

  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
    <xsd:attribute name="orderDate" type="xsd:date"/>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:sequence>
            <xsd:element name="productName" type="xsd:string"/>
            <xsd:element name="quantity">
              <xsd:simpleType>
                <xsd:restriction base="xsd:positiveInteger">
                  <xsd:maxExclusive value="100"/>
                </xsd:restriction>
              </xsd:simpleType>
            </xsd:element>
            <xsd:element name="USPrice" type="xsd:decimal"/>
            <xsd:element ref="comment" minOccurs="0"/>
            <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
          </xsd:sequence>
          <xsd:attribute name="partNum" type="SKU" use="required"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:simpleType name="SKU">
    <xsd:restriction base="xsd:string">
      <xsd:pattern value="\d{3}-[A-Z]{2}"/>
    </xsd:restriction>
  </xsd:simpleType>

</xsd:schema>
`

// PurchaseOrderDoc is the instance document of the paper's Figure 1.
const PurchaseOrderDoc = `<?xml version="1.0"?>
<purchaseOrder orderDate="1999-10-20">
  <shipTo country="US">
    <name>Alice Smith</name>
    <street>123 Maple Street</street>
    <city>Mill Valley</city>
    <state>CA</state>
    <zip>90952</zip>
  </shipTo>
  <billTo country="US">
    <name>Robert Smith</name>
    <street>8 Oak Avenue</street>
    <city>Old Town</city>
    <state>PA</state>
    <zip>95819</zip>
  </billTo>
  <comment>Hurry, my lawn is going wild</comment>
  <items>
    <item partNum="872-AA">
      <productName>Lawnmower</productName>
      <quantity>1</quantity>
      <USPrice>148.95</USPrice>
      <comment>Confirm this is electric</comment>
    </item>
    <item partNum="926-AA">
      <productName>Baby Monitor</productName>
      <quantity>1</quantity>
      <USPrice>39.98</USPrice>
      <shipDate>1999-05-21</shipDate>
    </item>
  </items>
</purchaseOrder>
`

// EvolvedPurchaseOrderXSD is the paper's §3 evolution of
// PurchaseOrderType: the shipTo/billTo pair becomes a choice between a
// single address (singAddr) and a two-address element (twoAddr). Used by
// the naming-scheme experiments (E6).
const EvolvedPurchaseOrderXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:choice>
        <xsd:element name="singAddr" type="USAddress"/>
        <xsd:element name="twoAddr" type="twoAddress"/>
      </xsd:choice>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
    <xsd:attribute name="orderDate" type="xsd:date"/>
  </xsd:complexType>

  <xsd:complexType name="twoAddress">
    <xsd:sequence>
      <xsd:element name="first" type="USAddress"/>
      <xsd:element name="second" type="USAddress"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" minOccurs="0" maxOccurs="unbounded" type="ItemType"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="ItemType">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity" type="xsd:positiveInteger"/>
      <xsd:element name="USPrice" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="partNum" type="xsd:string" use="required"/>
  </xsd:complexType>

</xsd:schema>
`

// AddressDerivationXSD is the paper's §3 type-extension example: Address
// extended to USAddress, plus the substitution-group example (shipComment
// and customerComment substituting for comment) and an abstract element.
const AddressDerivationXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:complexContent>
      <xsd:extension base="Address">
        <xsd:sequence>
          <xsd:element name="state" type="xsd:string"/>
          <xsd:element name="zip" type="xsd:string"/>
        </xsd:sequence>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>

  <xsd:element name="address" type="Address"/>

  <xsd:element name="comment" type="xsd:string"/>
  <xsd:element name="shipComment" type="xsd:string" substitutionGroup="comment"/>
  <xsd:element name="customerComment" type="xsd:string" substitutionGroup="comment"/>

  <xsd:element name="note" abstract="true" type="xsd:string"/>
  <xsd:element name="shipNote" type="xsd:string" substitutionGroup="note"/>

  <xsd:complexType name="CommentBlock">
    <xsd:sequence>
      <xsd:element ref="comment" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="commentBlock" type="CommentBlock"/>

  <xsd:complexType name="NoteBlock">
    <xsd:sequence>
      <xsd:element ref="note" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="noteBlock" type="NoteBlock"/>

</xsd:schema>
`

// NamespacedOrderXSD is a purchase-order variant with a target namespace
// and qualified local elements — exercising the namespace handling the
// paper's examples (which live in no namespace) do not.
const NamespacedOrderXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:po="urn:example:po" targetNamespace="urn:example:po"
    elementFormDefault="qualified">

  <xsd:element name="order" type="po:OrderType"/>

  <xsd:complexType name="OrderType">
    <xsd:sequence>
      <xsd:element name="id" type="xsd:positiveInteger"/>
      <xsd:element name="note" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
    <xsd:attribute name="priority" type="xsd:int"/>
  </xsd:complexType>

</xsd:schema>
`

// ComplexGroupsXSD exercises the normal form's group promotion paths in
// one vocabulary: a choice whose alternative is an unnamed sequence (the
// paper's nested-group case), a repeated unnamed sequence (a "list
// expression"), and an element with an anonymous complex type.
const ComplexGroupsXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:element name="report" type="Report"/>

  <xsd:complexType name="Report">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:choice>
        <xsd:element name="summary" type="xsd:string"/>
        <xsd:sequence>
          <xsd:element name="first" type="xsd:string"/>
          <xsd:element name="last" type="xsd:string"/>
        </xsd:sequence>
      </xsd:choice>
      <xsd:sequence minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="key" type="xsd:string"/>
        <xsd:element name="value" type="xsd:string"/>
      </xsd:sequence>
      <xsd:element name="entry" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:sequence>
            <xsd:element name="when" type="xsd:date"/>
          </xsd:sequence>
          <xsd:attribute name="id" type="xsd:ID"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
    <xsd:attribute name="version" type="xsd:positiveInteger"/>
  </xsd:complexType>

</xsd:schema>
`

// WildcardEnvelopeXSD exercises the wildcard surfaces the paper's
// examples avoid: a lax xsd:any content model (known globals validate,
// foreign content passes) and an open attribute set via xsd:anyAttribute.
const WildcardEnvelopeXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:element name="envelope" type="Envelope"/>
  <xsd:element name="extra" type="xsd:string"/>
  <xsd:element name="record" type="Record"/>

  <xsd:complexType name="Envelope">
    <xsd:sequence>
      <xsd:any minOccurs="0" maxOccurs="unbounded" processContents="lax"/>
    </xsd:sequence>
    <xsd:attribute name="version" type="xsd:positiveInteger"/>
    <xsd:anyAttribute/>
  </xsd:complexType>

  <xsd:complexType name="Record">
    <xsd:sequence>
      <xsd:element name="key" type="xsd:string"/>
      <xsd:element name="value" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

</xsd:schema>
`

// WildcardEnvelopeDoc is a valid instance of WildcardEnvelopeXSD mixing
// known globals with foreign content under the lax wildcard.
const WildcardEnvelopeDoc = `<?xml version="1.0"?>
<envelope version="2" x-trace="abc">
  <extra>first note</extra>
  <record>
    <key>color</key>
    <value>green</value>
  </record>
  <unknown attr="kept"><nested/>text</unknown>
</envelope>
`

// NamedGroupXSD is the paper's explicit-naming example: the address choice
// is pulled into a named group AddressGroup (§3).
const NamedGroupXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:group name="AddressGroup">
    <xsd:choice>
      <xsd:element name="singAddr" type="xsd:string"/>
      <xsd:element name="twoAddr" type="xsd:string"/>
    </xsd:choice>
  </xsd:group>

  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:group ref="AddressGroup"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>

</xsd:schema>
`
