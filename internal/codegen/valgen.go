package codegen

// The validator back end: GenerateValidator emits a companion file for a
// generated binding package that validates, decodes and marshals documents
// of one schema with straight-line code — every content model unrolled
// into switch statements over its exported DFA (contentmodel.ExportDFA),
// every attribute set and simple-type facet chain compiled to direct
// checks, and a decode/marshal pair that mirrors the generic binder
// without reflection or plan lookups. Cold paths (xsi:type substitutions,
// identity constraints, declarations pruned by the instance-corpus pass,
// models the exporter refuses) delegate to the interpreted walk through
// validator.Sink, which shares the run state, so combined verdicts —
// including MatchError text — are byte-identical to
// validator.ValidateDocument.

import (
	"fmt"
	"go/format"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/normalize"
	"repro/internal/validator"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// GenerateValidator parses the schema source and emits the compiled
// validator as a single Go source file. It is designed to live next to the
// binding file Generate emits for the same schema and options: the emitted
// code references that file's RT runtime (and so never re-parses the
// schema at init). When opts.Corpus is non-empty, element declarations no
// corpus document reaches are emitted as stubs that delegate to the
// interpreted walk (the pruning pass); every corpus document must be valid
// against the schema.
func GenerateValidator(schemaSource string, opts Options) (string, error) {
	schema, err := xsd.ParseString(schemaSource, nil)
	if err != nil {
		return "", err
	}
	norm, err := normalize.Normalize(schema, opts.Scheme)
	if err != nil {
		return "", err
	}
	v := &valgen{
		schema:    schema,
		norm:      norm,
		names:     AssignNames(norm),
		opts:      opts,
		declVar:   map[*xsd.ElementDecl]string{},
		typeVar:   map[xsd.Type]string{},
		models:    map[*xsd.ComplexType]*modelInfo{},
		parseFns:  map[*xsd.SimpleType]*parseFn{},
		valueVars: map[valueKey]*valueVar{},
	}
	if len(opts.Corpus) > 0 {
		if err := v.observeCorpus(); err != nil {
			return "", err
		}
	}
	v.discover()
	code, err := v.run()
	if err != nil {
		return "", err
	}
	formatted, err := format.Source([]byte(code))
	if err != nil {
		// A formatting failure means the generator emitted invalid Go;
		// return the raw text so the caller can diagnose it.
		return code, fmt.Errorf("codegen: generated validator does not parse: %w", err)
	}
	return string(formatted), nil
}

// valgen carries the discovery and emission state of one validator file.
type valgen struct {
	schema *xsd.Schema
	norm   *normalize.Result
	names  *Names
	opts   Options

	// reached is the corpus-pruning live set; nil disables pruning.
	reached map[*xsd.ElementDecl]bool

	// Handles: package-level vars resolving schema components from RT.
	handles  []handleVar
	declVar  map[*xsd.ElementDecl]string
	declList []*xsd.ElementDecl
	typeVar  map[xsd.Type]string
	typeList []xsd.Type

	models    map[*xsd.ComplexType]*modelInfo
	modelList []*modelInfo

	parseFns  map[*xsd.SimpleType]*parseFn
	parseList []*parseFn

	valueVars map[valueKey]*valueVar
	valueList []*valueVar

	needParticleElem bool
	needWild         bool

	body strings.Builder
	err  error
}

type handleVar struct{ name, expr, comment string }

// modelInfo is one compiled content model: either an exported DFA with a
// static dispatch plan per leaf, or a fallback marker when the exporter
// refused it (the generated code then delegates to the interpreted
// matcher).
type modelInfo struct {
	name     string
	ct       *xsd.ComplexType
	table    *contentmodel.DFATable
	fallback string // non-empty: reason the model is interpreted
	// dispatch[i] lists the gen-time-resolved declarations of leaf i's
	// name set; nil for wildcard leaves (runtime global-element dispatch).
	dispatch [][]leafTarget
}

type leafTarget struct {
	space, local string
	decl         *xsd.ElementDecl
}

// parseFn is one generated simple-type parser. Non-atomic varieties (and
// any chain the emitter cannot unroll) delegate to SimpleType.Parse on the
// type handle, which is behaviorally identical.
type parseFn struct {
	name     string
	st       *xsd.SimpleType
	delegate bool
}

// valueVar is one precomputed fixed/default value, parsed once at init
// with the same generated parser the checks use.
type valueKey struct{ parse, lexical string }

type valueVar struct {
	name    string
	parse   string
	lexical string
}

func (v *valgen) fail(format string, args ...any) {
	if v.err == nil {
		v.err = fmt.Errorf("codegen: "+format, args...)
	}
}

// observeCorpus validates every corpus document with an ElementObserver,
// recording which declarations the interpreted walk reaches.
func (v *valgen) observeCorpus() error {
	v.reached = map[*xsd.ElementDecl]bool{}
	val := validator.New(v.schema, &validator.Options{
		ElementObserver: func(d *xsd.ElementDecl) { v.reached[d] = true },
	})
	for _, cd := range v.opts.Corpus {
		doc, err := dom.ParseString(cd.Source)
		if err != nil {
			return fmt.Errorf("codegen: corpus document %s: %w", cd.Name, err)
		}
		if res := val.ValidateDocument(doc); !res.OK() {
			return fmt.Errorf("codegen: corpus document %s is invalid: %s", cd.Name, res.Violations[0].Error())
		}
	}
	return nil
}

// live reports whether a declaration survived the pruning pass.
func (v *valgen) live(d *xsd.ElementDecl) bool {
	return v.reached == nil || v.reached[d]
}

// discover walks the schema from its global element declarations,
// assigning handle vars for every component the generated code references
// and compiling every reachable content model. The walk is deterministic
// (normalized global order, then declaration order within each type), so
// regeneration is byte-stable.
func (v *valgen) discover() {
	for _, d := range v.norm.Elements {
		v.visitDecl(d, fmt.Sprintf("gvElemDecl(%q, %q)", d.Name.Space, d.Name.Local))
	}
}

// visitDecl assigns a handle for one element declaration (idempotent) and,
// when the declaration is live, descends into its governing type.
func (v *valgen) visitDecl(d *xsd.ElementDecl, expr string) {
	if _, ok := v.declVar[d]; ok {
		return
	}
	name := fmt.Sprintf("gvDecl%d", len(v.declList))
	v.declVar[d] = name
	v.declList = append(v.declList, d)
	comment := "element " + d.Name.String()
	if !v.live(d) {
		comment += " (pruned: delegates to the interpreted walk)"
	}
	v.handles = append(v.handles, handleVar{name, expr, comment})
	if v.live(d) {
		v.visitType(d.Type, name+".Type", false)
	}
}

// visitType assigns a handle for one type (idempotent) and descends into
// the components its generated code needs: attribute types, the simple
// content type, the content model and its leaf declarations, and — for
// simple types — the restriction chain down to the built-in wrapper.
// concrete marks expr as already having the handle's static Go type (no
// type assertion needed).
func (v *valgen) visitType(t xsd.Type, expr string, concrete bool) {
	if _, ok := v.typeVar[t]; ok {
		return
	}
	name := fmt.Sprintf("gvT%d", len(v.typeList))
	v.typeVar[t] = name
	v.typeList = append(v.typeList, t)
	switch tt := t.(type) {
	case *xsd.ComplexType:
		if !concrete {
			expr += ".(*xsd.ComplexType)"
		}
		v.handles = append(v.handles, handleVar{name, expr, "complex type " + typeLabel(t)})
		for i, use := range tt.AttributeUses {
			v.visitType(use.Decl.Type, fmt.Sprintf("%s.AttributeUses[%d].Decl.Type", name, i), true)
		}
		switch tt.Kind {
		case xsd.ContentSimple:
			v.visitType(tt.SimpleContentType, name+".SimpleContentType", true)
		case xsd.ContentElementOnly, xsd.ContentMixed:
			v.buildModel(tt)
			v.visitParticle(tt.Particle, name+".Particle", nil)
		}
	case *xsd.SimpleType:
		if !concrete {
			expr += ".(*xsd.SimpleType)"
		}
		v.handles = append(v.handles, handleVar{name, expr, "simple type " + typeLabel(t)})
		// The straight-line parser references every chain level above the
		// built-in wrapper (facet steps) plus the wrapper itself.
		if tt.Builtin == nil && tt.Base != nil {
			v.visitType(tt.Base, name+".Base", true)
		}
	}
}

// visitParticle assigns handles for the element declarations of a content
// model, addressed by their group-index path from the owning type's
// particle (gvParticleElem walks the same path at init).
func (v *valgen) visitParticle(p *xsd.Particle, rootExpr string, idx []int) {
	if p == nil {
		return
	}
	switch {
	case p.Element != nil:
		var b strings.Builder
		fmt.Fprintf(&b, "gvParticleElem(%s", rootExpr)
		for _, i := range idx {
			fmt.Fprintf(&b, ", %d", i)
		}
		b.WriteString(")")
		v.needParticleElem = true
		v.visitDecl(p.Element, b.String())
	case p.Group != nil:
		for i, c := range p.Group.Particles {
			v.visitParticle(c, rootExpr, append(append([]int{}, idx...), i))
		}
	}
}

// buildModel compiles and eagerly determinizes one content model, and
// resolves every leaf name to its governing declaration at generation time
// (mirroring Schema.ResolveChild). Any refusal downgrades the model to the
// interpreted fallback.
func (v *valgen) buildModel(ct *xsd.ComplexType) {
	if _, ok := v.models[ct]; ok {
		return
	}
	mi := &modelInfo{name: fmt.Sprintf("gvM%d", len(v.modelList)), ct: ct}
	v.models[ct] = mi
	v.modelList = append(v.modelList, mi)
	g, err := contentmodel.CompileGlushkov(v.schema.CompileParticle(ct.Particle))
	if err != nil {
		mi.fallback = err.Error()
		return
	}
	table, err := g.ExportDFA(0)
	if err != nil {
		mi.fallback = err.Error()
		return
	}
	for _, l := range table.Leaves {
		if l.Wildcard != nil {
			mi.dispatch = append(mi.dispatch, nil)
			v.needWild = true
			continue
		}
		decl := l.Data.(*xsd.ElementDecl)
		var targets []leafTarget
		for _, n := range l.Names {
			resolved, rerr := resolveStatic(v.schema, decl, xsd.QName{Space: n.Space, Local: n.Local})
			if rerr != nil {
				mi.fallback = rerr.Error()
				return
			}
			targets = append(targets, leafTarget{space: n.Space, local: n.Local, decl: resolved})
		}
		mi.dispatch = append(mi.dispatch, targets)
	}
	mi.table = table
}

// resolveStatic is Schema.ResolveChild evaluated at generation time: the
// name is either the declared element itself or a substitution-group
// member whose head chain reaches the declaration.
func resolveStatic(s *xsd.Schema, declared *xsd.ElementDecl, name xsd.QName) (*xsd.ElementDecl, error) {
	if declared.Name == name {
		if declared.Abstract {
			return nil, fmt.Errorf("element %s is abstract and cannot appear in instances", name)
		}
		return declared, nil
	}
	if g, ok := s.LookupElement(name); ok {
		for h := g.SubstitutionHead; h != nil; h = h.SubstitutionHead {
			if h == declared || h.Name == declared.Name {
				if g.Abstract {
					return nil, fmt.Errorf("element %s is abstract and cannot appear in instances", name)
				}
				return g, nil
			}
		}
	}
	return nil, fmt.Errorf("element %s cannot substitute for %s", name, declared.Name)
}

// typeLabel names a type for generated comments.
func typeLabel(t xsd.Type) string {
	if n := t.TypeName(); !n.IsZero() {
		return n.String()
	}
	switch tt := t.(type) {
	case *xsd.ComplexType:
		if tt.Context != "" {
			return "anonymous (" + tt.Context + ")"
		}
	case *xsd.SimpleType:
		if tt.Context != "" {
			return "anonymous (" + tt.Context + ")"
		}
	}
	return "anonymous"
}

// displayName mirrors SimpleType.displayName for gen-time error literals.
func displayName(s *xsd.SimpleType) string {
	if !s.Name.IsZero() {
		return s.Name.Local
	}
	if s.Context != "" {
		return "anonymous type (" + s.Context + ")"
	}
	return "anonymous simple type"
}

// effWS mirrors SimpleType.effectiveWhiteSpace at generation time.
func effWS(s *xsd.SimpleType) xsdtypes.WhiteSpace {
	for t := s; t != nil; t = t.Base {
		if t.Facets.WhiteSpace != nil {
			return *t.Facets.WhiteSpace
		}
		if t.Builtin != nil {
			return t.Builtin.WS
		}
	}
	return xsdtypes.WSCollapse
}

func wsConst(ws xsdtypes.WhiteSpace) string {
	switch ws {
	case xsdtypes.WSPreserve:
		return "WSPreserve"
	case xsdtypes.WSReplace:
		return "WSReplace"
	default:
		return "WSCollapse"
	}
}

// p emits one line of the function body buffer (gofmt re-indents).
func (v *valgen) p(format string, args ...any) {
	fmt.Fprintf(&v.body, format, args...)
	v.body.WriteByte('\n')
}

// run emits the whole file: the body (public API plus per-declaration and
// per-type functions) is generated first so it can demand parse functions,
// value vars and models; the header, handle block and demanded support
// code are assembled around it afterwards.
func (v *valgen) run() (string, error) {
	v.emitAPI()
	for _, d := range v.declList {
		v.emitElemValidate(d)
	}
	for _, t := range v.typeList {
		if ct, ok := t.(*xsd.ComplexType); ok {
			v.emitTypeValidate(ct)
		}
	}
	v.emitDecodeAPI()
	for _, d := range v.declList {
		v.emitElemDecode(d)
	}
	for _, t := range v.typeList {
		if ct, ok := t.(*xsd.ComplexType); ok {
			v.emitTypeDecode(ct)
		}
	}
	v.emitMarshal()
	if v.needWild {
		v.emitWildHelpers()
	}
	if v.err != nil {
		return "", v.err
	}
	return v.assemble(), nil
}

// assemble builds the final file around the emitted body.
func (v *valgen) assemble() string {
	body := v.body.String()

	var support strings.Builder
	sp := func(format string, args ...any) {
		fmt.Fprintf(&support, format, args...)
		support.WriteByte('\n')
	}
	v.emitHelpers(sp)
	v.emitHandles(sp)
	v.emitValueVars(sp)
	for _, f := range v.parseList {
		v.emitParseFn(sp, f)
	}
	for _, mi := range v.modelList {
		if mi.table == nil {
			sp("// %s (%s) stays on the interpreted matcher: %s", mi.name, typeLabel(mi.ct), mi.fallback)
			sp("")
			continue
		}
		emitModelTables(sp, mi.name, mi.table, "content model of "+typeLabel(mi.ct))
		emitModelStep(sp, mi.name, mi.table)
	}
	supportStr := support.String()

	all := supportStr + body
	var out strings.Builder
	op := func(format string, args ...any) {
		fmt.Fprintf(&out, format, args...)
		out.WriteByte('\n')
	}
	op("// Code generated by vdomgen from %s. DO NOT EDIT.", v.opts.SchemaComment)
	op("//")
	op("// Compiled validator (the codegen validator back end): every content")
	op("// model is unrolled into switch statements over its exported DFA,")
	op("// attribute sets and simple-type facet chains are straight-line checks,")
	op("// and Decode/Marshal specialize the generic binder walk. Cold paths")
	op("// (xsi:type, identity constraints, pruned declarations, refused models)")
	op("// delegate to the interpreted walk through validator.Sink, so verdicts")
	op("// — including MatchError text — are byte-identical to")
	op("// validator.ValidateDocument over the RT schema.")
	if v.reached != nil {
		op("//")
		op("// Pruned build: declarations unreached by the instance corpus")
		op("// (%s) delegate to the interpreted walk.", v.corpusNames())
	}
	op("package %s", v.opts.Package)
	op("")
	op("import (")
	if strings.Contains(all, "fmt.") {
		op("\t\"fmt\"")
	}
	if strings.Contains(all, "strings.") {
		op("\t\"strings\"")
	}
	op("")
	op("\t\"repro/internal/bind\"")
	if strings.Contains(all, "contentmodel.") {
		op("\t\"repro/internal/contentmodel\"")
	}
	op("\t\"repro/internal/dom\"")
	op("\t\"repro/internal/validator\"")
	op("\t\"repro/internal/xsd\"")
	if strings.Contains(all, "xsdtypes.") {
		op("\t\"repro/internal/xsdtypes\"")
	}
	op(")")
	op("")
	out.WriteString(all)
	return out.String()
}

func (v *valgen) corpusNames() string {
	var names []string
	for _, cd := range v.opts.Corpus {
		names = append(names, cd.Name)
	}
	return strings.Join(names, ", ")
}

// emitHelpers prints the fixed lookup helpers the handle block uses.
func (v *valgen) emitHelpers(p func(string, ...any)) {
	p("// gvElemDecl resolves a global element declaration from the runtime")
	p("// schema; the schema is embedded (SchemaSource), so the lookup cannot")
	p("// fail on an unmodified generated package.")
	p("func gvElemDecl(space, local string) *xsd.ElementDecl {")
	p("d, ok := gvSchema.LookupElement(xsd.QName{Space: space, Local: local})")
	p("if !ok {")
	p("panic(\"codegen: schema drift: no global element \" + xsd.QName{Space: space, Local: local}.String())")
	p("}")
	p("return d")
	p("}")
	p("")
	if v.needParticleElem {
		p("// gvParticleElem walks group-particle indices to a local element")
		p("// declaration of a complex type's content model.")
		p("func gvParticleElem(p *xsd.Particle, path ...int) *xsd.ElementDecl {")
		p("for _, i := range path {")
		p("p = p.Group.Particles[i]")
		p("}")
		p("return p.Element")
		p("}")
		p("")
	}
	if len(v.valueList) > 0 {
		p("// gvVal parses one fixed/default lexical value at init; the ok flag")
		p("// mirrors the interpreted walk's silent skip of unparseable values.")
		p("func gvVal(parse func(string) (xsdtypes.Value, error), lexical string) (xsdtypes.Value, bool) {")
		p("val, err := parse(lexical)")
		p("return val, err == nil")
		p("}")
		p("")
	}
}

// emitHandles prints the component-handle var block.
func (v *valgen) emitHandles(p func(string, ...any)) {
	p("// Schema-component handles, resolved once at init from the binding")
	p("// file's RT runtime (the schema is parsed exactly once per package).")
	p("var (")
	p("gvSchema    = RT.Schema")
	p("gvValidator = validator.New(gvSchema, nil)")
	p("gvBinder    = bind.New(gvSchema, gvValidator)")
	p("")
	for _, h := range v.handles {
		p("%s = %s // %s", h.name, h.expr, h.comment)
	}
	p(")")
	p("")
}

// emitValueVars prints the precomputed fixed/default values.
func (v *valgen) emitValueVars(p func(string, ...any)) {
	if len(v.valueList) == 0 {
		return
	}
	p("// Precomputed fixed/default values (parsed once at init).")
	p("var (")
	for _, vv := range v.valueList {
		p("%s, %sOK = gvVal(%s, %q)", vv.name, vv.name, vv.parse, vv.lexical)
	}
	p(")")
	p("")
}
