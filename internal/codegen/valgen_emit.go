package codegen

// Function-body emission for the validator back end: the public API
// (Validate/Decode/Marshal and friends), one validate and one decode
// function per element declaration, and one attribute/content pair per
// complex type. Every emitted check replays the corresponding interpreted
// step (validator.run / bind.Binder) literally, so messages are
// byte-identical.

import (
	"fmt"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/xsd"
)

// elemFn names a per-declaration generated function.
func (v *valgen) elemFn(prefix string, d *xsd.ElementDecl) string {
	en, ok := v.names.Elements[d]
	if !ok {
		v.fail("element %s has no assigned names", d.Name)
		return prefix + "Missing"
	}
	return prefix + en.GoType
}

// typeGo names a per-type generated function suffix.
func (v *valgen) typeGo(t xsd.Type) string {
	tn, ok := v.names.Types[t]
	if !ok {
		v.fail("type %s has no assigned names", typeLabel(t))
		return "Missing"
	}
	return tn.GoType
}

// trackMethod maps a simple type to the Sink ID-tracking call its values
// need ("" when the primitive is not ID-flavored), mirroring run.trackIDs.
func trackMethod(st *xsd.SimpleType) string {
	b := st.PrimitiveBuiltin()
	if b == nil {
		return ""
	}
	switch b.Name {
	case "ID":
		return "TrackID"
	case "IDREF":
		return "TrackIDRef"
	case "IDREFS":
		return "TrackIDRefs"
	}
	return ""
}

// admitsExpr renders Wildcard.Admits over a namespace expression.
func admitsExpr(w *contentmodel.Wildcard, spaceExpr string) string {
	switch w.Kind {
	case contentmodel.WildAny:
		return "true"
	case contentmodel.WildOther:
		return fmt.Sprintf("%s != %q && %s != \"\"", spaceExpr, w.TargetNS, spaceExpr)
	default:
		seen := map[string]bool{}
		var conds []string
		for _, ns := range w.Namespaces {
			if seen[ns] {
				continue
			}
			seen[ns] = true
			conds = append(conds, fmt.Sprintf("%s == %q", spaceExpr, ns))
		}
		if len(conds) == 0 {
			return "false"
		}
		return strings.Join(conds, " || ")
	}
}

// nameArm is one case of a namespace+local-name switch.
type nameArm struct {
	space, local string
	body         func()
}

// emitNameSwitch prints a two-level switch over (space, local), grouping
// arms by namespace in first-seen order.
func (v *valgen) emitNameSwitch(spaceExpr, localExpr string, arms []nameArm) {
	var spaces []string
	bySpace := map[string][]nameArm{}
	for _, a := range arms {
		if _, ok := bySpace[a.space]; !ok {
			spaces = append(spaces, a.space)
		}
		bySpace[a.space] = append(bySpace[a.space], a)
	}
	v.p("switch %s {", spaceExpr)
	for _, sp := range spaces {
		v.p("case %q:", sp)
		v.p("switch %s {", localExpr)
		for _, a := range bySpace[sp] {
			v.p("case %q:", a.local)
			a.body()
		}
		v.p("}")
	}
	v.p("}")
}

// emitAPI prints Validate and ValidateBytes.
func (v *valgen) emitAPI() {
	p := v.p
	p("// Validate checks a whole document against the schema. The verdict —")
	p("// every violation path and message — is byte-identical to")
	p("// validator.ValidateDocument over the RT schema.")
	p("func Validate(doc *dom.Document) *validator.Result {")
	p("s := validator.NewSink(gvValidator)")
	p("root := doc.DocumentElement()")
	p("if root == nil {")
	p("s.Violate(\"/\", \"document has no root element\")")
	p("return s.Result()")
	p("}")
	var arms []nameArm
	for _, d := range v.norm.Elements {
		decl := d
		arms = append(arms, nameArm{space: d.Name.Space, local: d.Name.Local, body: func() {
			p("%s(s, root, \"/\"+root.TagName())", v.elemFn("gvElem", decl))
			p("s.CheckIDRefs()")
			p("return s.Result()")
		}})
	}
	v.emitNameSwitch("root.NamespaceURI()", "root.LocalName()", arms)
	p("s.Violate(\"/\"+root.TagName(), fmt.Sprintf(\"no global declaration for root element %%s\", xsd.QName{Space: root.NamespaceURI(), Local: root.LocalName()}))")
	p("return s.Result()")
	p("}")
	p("")
	p("// ValidateBytes parses and validates a serialized document in one")
	p("// step, like validator.ValidateBytes.")
	p("func ValidateBytes(src []byte) (*dom.Document, *validator.Result) {")
	p("doc, err := dom.Parse(src)")
	p("if err != nil {")
	p("return nil, &validator.Result{Violations: []validator.Violation{{Path: \"/\", Msg: err.Error()}}}")
	p("}")
	p("return doc, Validate(doc)")
	p("}")
	p("")
}

// emitElemValidate prints the validate function of one declaration.
func (v *valgen) emitElemValidate(d *xsd.ElementDecl) {
	p := v.p
	fn := v.elemFn("gvElem", d)
	if !v.live(d) {
		p("// %s delegates %s to the interpreted walk (pruned:", fn, d.Name.String())
		p("// the instance corpus never reaches this declaration).")
		p("func %s(s *validator.Sink, el *dom.Element, path string) {", fn)
		p("s.Element(el, %s, path)", v.declVar[d])
		p("}")
		p("")
		return
	}
	p("// %s validates one element governed by %s.", fn, d.Name.String())
	p("func %s(s *validator.Sink, el *dom.Element, path string) {", fn)
	p("if s.Full() {")
	p("return")
	p("}")
	p("// xsi:type substitutions take the interpreted path (shared run state).")
	p("if el.GetAttributeNS(xsd.XSINamespace, \"type\") != \"\" {")
	p("s.Element(el, %s, path)", v.declVar[d])
	p("return")
	p("}")
	if ct, ok := d.Type.(*xsd.ComplexType); ok && ct.Abstract {
		p("s.Violate(path, %q)", fmt.Sprintf("type %s is abstract; an xsi:type of a concrete derived type is required", ct.Name))
		p("}")
		p("")
		return
	}
	if !d.Nillable {
		p("if el.GetAttributeNS(xsd.XSINamespace, \"nil\") != \"\" {")
		p("s.Violate(path, \"xsi:nil on a non-nillable element\")")
		p("return")
		p("}")
	} else {
		p("if lex := el.GetAttributeNS(xsd.XSINamespace, \"nil\"); lex == \"true\" || lex == \"1\" {")
		p("if len(el.ChildNodes()) > 0 {")
		p("s.Violate(path, \"nilled element must be empty\")")
		p("}")
		p("return")
		p("}")
	}
	switch t := d.Type.(type) {
	case *xsd.SimpleType:
		p("%s(s, el, path)", v.elemFn("gvContent", d))
		p("for _, a := range el.Attributes() {")
		p("if validator.IsMetaAttr(a) {")
		p("continue")
		p("}")
		p("s.Violate(path, fmt.Sprintf(\"attribute %%q is not allowed on a simple-type element\", a.NodeName()))")
		p("}")
	case *xsd.ComplexType:
		p("gvType%s(s, el, path)", v.typeGo(t))
	}
	if len(d.Constraints) > 0 {
		p("s.IdentityConstraints(el, %s, path)", v.declVar[d])
	}
	p("}")
	p("")
	if st, ok := d.Type.(*xsd.SimpleType); ok {
		v.emitSimpleContent(d, st)
	}
}

// emitSimpleContent prints the character-content check of a simple-typed
// declaration (run.simpleContent).
func (v *valgen) emitSimpleContent(d *xsd.ElementDecl, st *xsd.SimpleType) {
	p := v.p
	fn := v.elemFn("gvContent", d)
	pf := v.parseFnFor(st)
	p("// %s checks the character content of %s.", fn, d.Name.String())
	p("func %s(s *validator.Sink, el *dom.Element, path string) {", fn)
	p("for _, c := range el.ChildNodes() {")
	p("if _, ok := c.(*dom.Element); ok {")
	p("s.Violate(path, \"element content is not allowed in a simple-type element\")")
	p("return")
	p("}")
	p("}")
	p("text := el.TextContent()")
	if d.Fixed != nil {
		p("if text == \"\" {")
		p("text = %q", *d.Fixed)
		p("}")
	}
	if d.Default != nil {
		p("if text == \"\" {")
		p("text = %q", *d.Default)
		p("}")
	}
	if d.Fixed != nil {
		p("val, err := %s(text)", pf)
	} else {
		p("_, err := %s(text)", pf)
	}
	p("if err != nil {")
	p("s.Violate(path, err.Error())")
	p("return")
	p("}")
	if d.Fixed != nil {
		vv := v.valueVarFor(st, *d.Fixed)
		p("if %sOK && !val.Equal(%s) {", vv, vv)
		p("s.Violate(path, fmt.Sprintf(\"value %%q does not equal the fixed value %%q\", text, %q))", *d.Fixed)
		p("}")
	}
	if tm := trackMethod(st); tm != "" {
		p("s.%s(text, path)", tm)
	}
	p("}")
	p("")
}

// emitTypeValidate prints the attribute and content checks of one complex
// type (run.attributes + run.complexElement).
func (v *valgen) emitTypeValidate(ct *xsd.ComplexType) {
	p := v.p
	fn := "gvType" + v.typeGo(ct)
	p("// %s validates attributes and content of %s.", fn, typeLabel(ct))
	p("func %s(s *validator.Sink, el *dom.Element, path string) {", fn)
	v.emitAttrValidate(ct)
	v.emitContentValidate(ct)
	p("}")
	p("")
}

// emitAttrValidate prints the unrolled attribute walk of one complex type.
func (v *valgen) emitAttrValidate(ct *xsd.ComplexType) {
	p := v.p
	var activeIdx []int // non-prohibited uses, declaration order
	for i, use := range ct.AttributeUses {
		if !use.Prohibited {
			activeIdx = append(activeIdx, i)
		}
	}
	for _, i := range activeIdx {
		if ct.AttributeUses[i].Required {
			p("seen%d := false", i)
		}
	}
	p("for _, a := range el.Attributes() {")
	p("if validator.IsMetaAttr(a) {")
	p("continue")
	p("}")
	unhandled := func() {
		if ct.AttrWildcard != nil {
			cond := admitsExpr(ct.AttrWildcard, "a.Name().Space")
			if cond == "true" {
				p("continue // attribute wildcard admits everything")
			} else {
				p("if %s { // attribute wildcard", cond)
				p("continue")
				p("}")
				p("s.Violate(path, fmt.Sprintf(\"attribute %%q is not declared for this element\", a.NodeName()))")
			}
		} else {
			p("s.Violate(path, fmt.Sprintf(\"attribute %%q is not declared for this element\", a.NodeName()))")
		}
	}
	if len(activeIdx) == 0 {
		unhandled()
		p("}")
	} else {
		p("handled := false")
		var arms []nameArm
		for _, i := range activeIdx {
			use := ct.AttributeUses[i]
			idx := i
			arms = append(arms, nameArm{space: use.Decl.Name.Space, local: use.Decl.Name.Local, body: func() {
				v.emitAttrArm(idx, use)
			}})
		}
		v.emitNameSwitch("a.Name().Space", "a.Name().Local", arms)
		p("if !handled {")
		unhandled()
		p("}")
		p("}")
	}
	for _, i := range activeIdx {
		use := ct.AttributeUses[i]
		if !use.Required {
			continue
		}
		p("if !seen%d {", i)
		p("s.Violate(path, %q)", fmt.Sprintf("required attribute %q is missing", use.Decl.Name.Local))
		p("}")
	}
}

// emitAttrArm prints the parse/fixed/ID-tracking checks of one attribute
// use, replaying run.attributes' per-attribute body.
func (v *valgen) emitAttrArm(idx int, use *xsd.AttributeUse) {
	p := v.p
	p("handled = true")
	if use.Required {
		p("seen%d = true", idx)
	}
	pf := v.parseFnFor(use.Decl.Type)
	tm := trackMethod(use.Decl.Type)
	if use.Fixed != nil {
		p("val, err := %s(a.Value())", pf)
		p("if err != nil {")
		p("s.Violate(path, fmt.Sprintf(\"attribute %%q: %%v\", a.NodeName(), err))")
		p("} else {")
		vv := v.valueVarFor(use.Decl.Type, *use.Fixed)
		p("if %sOK && !val.Equal(%s) {", vv, vv)
		p("s.Violate(path, fmt.Sprintf(\"attribute %%q must have the fixed value %%q\", a.NodeName(), %q))", *use.Fixed)
		p("}")
		if tm != "" {
			p("s.%s(a.Value(), path+\"/@\"+a.NodeName())", tm)
		}
		p("}")
		return
	}
	p("if _, err := %s(a.Value()); err != nil {", pf)
	p("s.Violate(path, fmt.Sprintf(\"attribute %%q: %%v\", a.NodeName(), err))")
	if tm != "" {
		p("} else {")
		p("s.%s(a.Value(), path+\"/@\"+a.NodeName())", tm)
	}
	p("}")
}

// emitContentValidate prints the content check of one complex type,
// dispatching on its static content kind.
func (v *valgen) emitContentValidate(ct *xsd.ComplexType) {
	p := v.p
	switch ct.Kind {
	case xsd.ContentSimple:
		p("for _, c := range el.ChildNodes() {")
		p("if _, ok := c.(*dom.Element); ok {")
		p("s.Violate(path, \"element content is not allowed in simple content\")")
		p("return")
		p("}")
		p("}")
		p("text := el.TextContent()")
		p("if _, err := %s(text); err != nil {", v.parseFnFor(ct.SimpleContentType))
		p("s.Violate(path, err.Error())")
		p("}")
		if tm := trackMethod(ct.SimpleContentType); tm != "" {
			p("s.%s(text, path)", tm)
		} else {
			p("_ = text")
		}
	case xsd.ContentEmpty:
		p("for _, c := range el.ChildNodes() {")
		p("switch x := c.(type) {")
		p("case *dom.Element:")
		p("s.Violate(path, fmt.Sprintf(\"element <%%s> is not allowed in empty content\", x.TagName()))")
		p("return")
		p("case *dom.Text:")
		p("if strings.TrimSpace(x.Data) != \"\" {")
		p("s.Violate(path, \"character data is not allowed in empty content\")")
		p("return")
		p("}")
		p("case *dom.CDATASection:")
		p("s.Violate(path, \"character data is not allowed in empty content\")")
		p("return")
		p("}")
		p("}")
	case xsd.ContentElementOnly, xsd.ContentMixed:
		mi := v.models[ct]
		if mi == nil || mi.table == nil {
			reason := "model not compiled"
			if mi != nil {
				reason = mi.fallback
			}
			p("// Interpreted content model (%s).", reason)
			p("s.ElementContent(el, %s, path)", v.typeVar[ct])
			return
		}
		v.emitModelValidate(ct, mi)
	}
}

// emitModelValidate prints the three-phase content walk: child collection
// with character-data checks, the unrolled DFA run, and per-child dispatch
// to the governing declaration's validate function.
func (v *valgen) emitModelValidate(ct *xsd.ComplexType, mi *modelInfo) {
	p := v.p
	p("var children []*dom.Element")
	p("for _, c := range el.ChildNodes() {")
	if ct.Kind == xsd.ContentElementOnly {
		p("switch x := c.(type) {")
		p("case *dom.Element:")
		p("children = append(children, x)")
		p("case *dom.Text:")
		p("if strings.TrimSpace(x.Data) != \"\" {")
		p("s.Violate(path, fmt.Sprintf(\"character data %%q is not allowed in element-only content\", validator.Snippet(x.Data)))")
		p("}")
		p("case *dom.CDATASection:")
		p("s.Violate(path, \"character data is not allowed in element-only content\")")
		p("}")
	} else {
		p("if x, ok := c.(*dom.Element); ok {")
		p("children = append(children, x)")
		p("}")
	}
	p("}")
	p("st := 0")
	p("leaves := make([]int, len(children))")
	p("for i, child := range children {")
	p("next, leaf := %sStep(st, child.NamespaceURI(), child.LocalName())", mi.name)
	p("if next < 0 {")
	p("s.Violate(validator.ChildPath(path, child), (&contentmodel.MatchError{Index: i, Got: contentmodel.Symbol{Space: child.NamespaceURI(), Local: child.LocalName()}, Expected: %sStepExp[st]}).Error())", mi.name)
	p("return")
	p("}")
	p("leaves[i] = leaf")
	p("st = next")
	p("}")
	if !mi.table.Nullable {
		p("if len(children) == 0 {")
		p("s.Violate(path, (&contentmodel.MatchError{Index: 0, Premature: true, Expected: %sEndExp[0]}).Error())", mi.name)
		p("return")
		p("}")
		p("if !%sAccept[st] {", mi.name)
	} else {
		p("if len(children) > 0 && !%sAccept[st] {", mi.name)
	}
	p("s.Violate(path, (&contentmodel.MatchError{Index: len(children), Premature: true, Expected: %sEndExp[st]}).Error())", mi.name)
	p("return")
	p("}")
	p("counts := map[string]int{}")
	p("for i, child := range children {")
	p("cpath := validator.ChildPathIndexed(path, child, counts)")
	p("switch leaves[i] {")
	for li, targets := range mi.dispatch {
		p("case %d:", li)
		switch {
		case targets == nil:
			p("gvValidateWild(s, child, cpath)")
		case len(targets) == 1:
			p("%s(s, child, cpath)", v.elemFn("gvElem", targets[0].decl))
		default:
			var arms []nameArm
			for _, t := range targets {
				decl := t.decl
				arms = append(arms, nameArm{space: t.space, local: t.local, body: func() {
					p("%s(s, child, cpath)", v.elemFn("gvElem", decl))
				}})
			}
			v.emitNameSwitch("child.NamespaceURI()", "child.LocalName()", arms)
		}
	}
	p("}")
	p("}")
}

// emitDecodeAPI prints Decode, DecodeBytes and JSON.
func (v *valgen) emitDecodeAPI() {
	p := v.p
	p("// Decode validates the document and, when valid, decodes it into a")
	p("// typed value on the specialized walk — same Value tree (and same")
	p("// JSON) as the generic Binder.")
	p("func Decode(doc *dom.Document) (*bind.Value, *validator.Result) {")
	p("res := Validate(doc)")
	p("if !res.OK() {")
	p("return nil, res")
	p("}")
	p("root := doc.DocumentElement()")
	p("if root == nil {")
	p("return nil, res")
	p("}")
	var arms []nameArm
	for _, d := range v.norm.Elements {
		decl := d
		arms = append(arms, nameArm{space: d.Name.Space, local: d.Name.Local, body: func() {
			p("val, err := %s(root, false)", v.elemFn("gvDec", decl))
			p("if err != nil {")
			p("return nil, &validator.Result{Violations: []validator.Violation{{Path: \"/\", Msg: \"bind: \" + err.Error()}}}")
			p("}")
			p("return val, res")
		}})
	}
	v.emitNameSwitch("root.NamespaceURI()", "root.LocalName()", arms)
	p("return nil, res")
	p("}")
	p("")
	p("// DecodeBytes parses, validates and decodes a serialized document.")
	p("func DecodeBytes(src []byte) (*bind.Value, *validator.Result) {")
	p("doc, err := dom.Parse(src)")
	p("if err != nil {")
	p("return nil, &validator.Result{Violations: []validator.Violation{{Path: \"/\", Msg: err.Error()}}}")
	p("}")
	p("return Decode(doc)")
	p("}")
	p("")
	p("// JSON renders a decoded value as canonical JSON (the binder's rules).")
	p("func JSON(v *bind.Value) []byte {")
	p("return gvBinder.JSON(v)")
	p("}")
	p("")
}

// decDelegates reports whether a declaration's decode function must
// delegate wholesale to the generic binder (pruned, or its content model
// stayed interpreted).
func (v *valgen) decDelegates(d *xsd.ElementDecl) bool {
	if !v.live(d) {
		return true
	}
	if ct, ok := d.Type.(*xsd.ComplexType); ok {
		if ct.Kind == xsd.ContentElementOnly || ct.Kind == xsd.ContentMixed {
			mi := v.models[ct]
			if mi == nil || mi.table == nil {
				return true
			}
		}
	}
	return false
}

// emitElemDecode prints the decode function of one declaration
// (bind.Binder.decodeElement specialized to it).
func (v *valgen) emitElemDecode(d *xsd.ElementDecl) {
	p := v.p
	fn := v.elemFn("gvDec", d)
	if v.decDelegates(d) {
		p("// %s decodes %s on the generic binder walk", fn, d.Name.String())
		p("// (pruned declaration or interpreted content model).")
		p("func %s(el *dom.Element, wild bool) (*bind.Value, error) {", fn)
		p("return gvBinder.DecodeElement(el, %s, wild)", v.declVar[d])
		p("}")
		p("")
		return
	}
	p("// %s decodes one validated element governed by %s.", fn, d.Name.String())
	p("func %s(el *dom.Element, wild bool) (*bind.Value, error) {", fn)
	p("// xsi:type substitutions take the generic path.")
	p("if el.GetAttributeNS(xsd.XSINamespace, \"type\") != \"\" {")
	p("return gvBinder.DecodeElement(el, %s, wild)", v.declVar[d])
	p("}")
	p("v := &bind.Value{Name: xsd.QName{Space: el.NamespaceURI(), Local: el.LocalName()}, Wild: wild}")
	p("v.SetType(%s)", v.typeVar[d.Type])
	ct, isComplex := d.Type.(*xsd.ComplexType)
	if isComplex {
		p("v.Attrs = gvDecAttrs%s(el)", v.typeGo(ct))
	}
	p("if lex := el.GetAttributeNS(xsd.XSINamespace, \"nil\"); lex == \"true\" || lex == \"1\" {")
	p("v.Kind = bind.KindNil")
	p("return v, nil")
	p("}")
	if st, ok := d.Type.(*xsd.SimpleType); ok {
		p("text := el.TextContent()")
		if d.Fixed != nil {
			p("if text == \"\" {")
			p("text = %q", *d.Fixed)
			p("}")
		}
		if d.Default != nil {
			p("if text == \"\" {")
			p("text = %q", *d.Default)
			p("}")
		}
		p("val, err := %s(text)", v.parseFnFor(st))
		p("if err != nil {")
		p("return nil, err")
		p("}")
		p("v.Kind = bind.KindSimple")
		p("v.Simple = val")
		p("return v, nil")
		p("}")
		p("")
		return
	}
	switch ct.Kind {
	case xsd.ContentSimple:
		p("val, err := %s(el.TextContent())", v.parseFnFor(ct.SimpleContentType))
		p("if err != nil {")
		p("return nil, err")
		p("}")
		p("v.Kind = bind.KindSimple")
		p("v.Simple = val")
		p("return v, nil")
	case xsd.ContentEmpty:
		p("v.Kind = bind.KindEmpty")
		p("return v, nil")
	default:
		p("return v, gvDecBody%s(v, el)", v.typeGo(ct))
	}
	p("}")
	p("")
}

// emitTypeDecode prints the attribute-typing function of one complex type
// and, for element-only/mixed content with an exported model, the content
// decode body.
func (v *valgen) emitTypeDecode(ct *xsd.ComplexType) {
	v.emitDecAttrs(ct)
	if ct.Kind != xsd.ContentElementOnly && ct.Kind != xsd.ContentMixed {
		return
	}
	mi := v.models[ct]
	if mi == nil || mi.table == nil {
		return
	}
	v.emitDecBody(ct, mi)
}

// emitDecAttrs prints the typed-attribute builder of one complex type
// (bind.Binder.typedAttrs specialized to it).
func (v *valgen) emitDecAttrs(ct *xsd.ComplexType) {
	p := v.p
	fn := "gvDecAttrs" + v.typeGo(ct)
	p("// %s types the attributes of %s, materializing", fn, typeLabel(ct))
	p("// absent defaulted/fixed attributes like the generic binder.")
	p("func %s(el *dom.Element) []bind.Attr {", fn)
	p("var out []bind.Attr")
	var activeIdx, defIdx []int
	for i, use := range ct.AttributeUses {
		if use.Prohibited {
			continue
		}
		activeIdx = append(activeIdx, i)
		if use.Default != nil || use.Fixed != nil {
			defIdx = append(defIdx, i)
		}
	}
	for _, i := range defIdx {
		p("seen%d := false", i)
	}
	p("for _, a := range el.Attributes() {")
	p("if validator.IsMetaAttr(a) {")
	p("continue")
	p("}")
	p("name := xsd.QName{Space: a.Name().Space, Local: a.Name().Local}")
	stringAppend := func() {
		p("out = append(out, bind.Attr{Name: name, Value: xsdtypes.Value{Kind: xsdtypes.VString, Str: a.Value()}})")
	}
	if len(activeIdx) == 0 {
		stringAppend()
		p("}")
	} else {
		p("handled := false")
		var arms []nameArm
		for _, i := range activeIdx {
			use := ct.AttributeUses[i]
			idx := i
			hasDef := use.Default != nil || use.Fixed != nil
			pf := v.parseFnFor(use.Decl.Type)
			arms = append(arms, nameArm{space: use.Decl.Name.Space, local: use.Decl.Name.Local, body: func() {
				p("handled = true")
				if hasDef {
					p("seen%d = true", idx)
				}
				p("if val, err := %s(a.Value()); err == nil {", pf)
				p("out = append(out, bind.Attr{Name: name, Value: val})")
				p("} else {")
				stringAppend()
				p("}")
			}})
		}
		v.emitNameSwitch("a.Name().Space", "a.Name().Local", arms)
		p("if !handled {")
		stringAppend()
		p("}")
		p("}")
	}
	for _, i := range defIdx {
		use := ct.AttributeUses[i]
		def := use.Default
		if def == nil {
			def = use.Fixed
		}
		vv := v.valueVarFor(use.Decl.Type, *def)
		p("if !seen%d && %sOK {", i, vv)
		p("out = append(out, bind.Attr{Name: xsd.QName{Space: %q, Local: %q}, Value: %s})", use.Decl.Name.Space, use.Decl.Name.Local, vv)
		p("}")
	}
	p("return out")
	p("}")
	p("")
}

// emitDecBody prints the content decode of one element-only or mixed
// complex type (bind.Binder.decodeModel specialized to its exported DFA).
func (v *valgen) emitDecBody(ct *xsd.ComplexType, mi *modelInfo) {
	p := v.p
	fn := "gvDecBody" + v.typeGo(ct)
	p("// %s decodes the child content of %s.", fn, typeLabel(ct))
	p("func %s(v *bind.Value, el *dom.Element) error {", fn)
	p("kids := el.ChildNodes()")
	p("var elems []*dom.Element")
	p("for _, k := range kids {")
	p("if e, ok := k.(*dom.Element); ok {")
	p("elems = append(elems, e)")
	p("}")
	p("}")
	p("st := 0")
	p("leaves := make([]int, len(elems))")
	p("for i, e := range elems {")
	p("next, leaf := %sStep(st, e.NamespaceURI(), e.LocalName())", mi.name)
	p("if next < 0 {")
	p("return fmt.Errorf(\"content model rejected validated children: %%s\", (&contentmodel.MatchError{Index: i, Got: contentmodel.Symbol{Space: e.NamespaceURI(), Local: e.LocalName()}, Expected: %sStepExp[st]}).Error())", mi.name)
	p("}")
	p("leaves[i] = leaf")
	p("st = next")
	p("}")
	if !mi.table.Nullable {
		p("if len(elems) == 0 {")
		p("return fmt.Errorf(\"content model rejected validated children: %%s\", (&contentmodel.MatchError{Index: 0, Premature: true, Expected: %sEndExp[0]}).Error())", mi.name)
		p("}")
		p("if !%sAccept[st] {", mi.name)
	} else {
		p("if len(elems) > 0 && !%sAccept[st] {", mi.name)
	}
	p("return fmt.Errorf(\"content model rejected validated children: %%s\", (&contentmodel.MatchError{Index: len(elems), Premature: true, Expected: %sEndExp[st]}).Error())", mi.name)
	p("}")
	p("vals := make([]*bind.Value, len(elems))")
	p("for i, e := range elems {")
	p("var cv *bind.Value")
	p("var err error")
	p("switch leaves[i] {")
	for li, targets := range mi.dispatch {
		p("case %d:", li)
		switch {
		case targets == nil:
			p("cv, err = gvDecodeWild(e)")
		case len(targets) == 1:
			p("cv, err = %s(e, false)", v.elemFn("gvDec", targets[0].decl))
		default:
			var arms []nameArm
			for _, t := range targets {
				decl := t.decl
				arms = append(arms, nameArm{space: t.space, local: t.local, body: func() {
					p("cv, err = %s(e, false)", v.elemFn("gvDec", decl))
				}})
			}
			v.emitNameSwitch("e.NamespaceURI()", "e.LocalName()", arms)
		}
	}
	p("}")
	p("if err != nil {")
	p("return err")
	p("}")
	p("vals[i] = cv")
	p("}")
	if ct.Kind == xsd.ContentMixed {
		p("v.Kind = bind.KindMixed")
		p("ei := 0")
		p("for _, k := range kids {")
		p("switch n := k.(type) {")
		p("case *dom.Element:")
		p("v.Segments = append(v.Segments, bind.Segment{Child: vals[ei]})")
		p("ei++")
		p("case *dom.Text:")
		p("v.Segments = bind.AppendText(v.Segments, n.Data)")
		p("case *dom.CDATASection:")
		p("v.Segments = bind.AppendText(v.Segments, n.Data)")
		p("}")
		p("}")
		p("return nil")
	} else {
		p("v.Kind = bind.KindStruct")
		p("v.Children = vals")
		p("return nil")
	}
	p("}")
	p("")
}

// emitMarshal prints the specialized Marshal (bind.Serialize plus the
// generated validator instead of the interpreted one).
func (v *valgen) emitMarshal() {
	p := v.p
	p("// Marshal serializes a value as schema-valid XML: the canonical")
	p("// serializer, re-parsed and re-validated by the generated validator,")
	p("// with the binder's exact error surface.")
	p("func Marshal(v *bind.Value) ([]byte, error) {")
	p("if v == nil {")
	p("return nil, fmt.Errorf(\"bind: cannot marshal a nil value\")")
	p("}")
	p("out := bind.Serialize(v)")
	p("doc, err := dom.Parse(out)")
	p("if err != nil {")
	p("return nil, fmt.Errorf(\"bind: marshaled document does not parse: %%w\", err)")
	p("}")
	p("if res := Validate(doc); !res.OK() {")
	p("viol := res.Violations[0]")
	p("return nil, fmt.Errorf(\"bind: marshaled document is schema-invalid at %%s: %%s\", viol.Path, viol.Msg)")
	p("}")
	p("return out, nil")
	p("}")
	p("")
}

// emitWildHelpers prints the lax wildcard dispatchers: validate known
// globals (accept everything else), decode known globals (raw otherwise).
func (v *valgen) emitWildHelpers() {
	p := v.p
	p("// gvValidateWild validates a wildcard-admitted element laxly: known")
	p("// global declarations validate, anything else is accepted.")
	p("func gvValidateWild(s *validator.Sink, child *dom.Element, cpath string) {")
	var varms []nameArm
	for _, d := range v.norm.Elements {
		decl := d
		varms = append(varms, nameArm{space: d.Name.Space, local: d.Name.Local, body: func() {
			p("%s(s, child, cpath)", v.elemFn("gvElem", decl))
		}})
	}
	v.emitNameSwitch("child.NamespaceURI()", "child.LocalName()", varms)
	p("}")
	p("")
	p("// gvDecodeWild decodes a wildcard-admitted element: known global")
	p("// declarations decode typed (wild), anything else is kept raw.")
	p("func gvDecodeWild(e *dom.Element) (*bind.Value, error) {")
	var darms []nameArm
	for _, d := range v.norm.Elements {
		decl := d
		darms = append(darms, nameArm{space: d.Name.Space, local: d.Name.Local, body: func() {
			p("return %s(e, true)", v.elemFn("gvDec", decl))
		}})
	}
	v.emitNameSwitch("e.NamespaceURI()", "e.LocalName()", darms)
	p("return &bind.Value{Name: xsd.QName{Space: e.NamespaceURI(), Local: e.LocalName()}, Kind: bind.KindRaw, Wild: true, Raw: dom.ToString(e)}, nil")
	p("}")
	p("")
}
