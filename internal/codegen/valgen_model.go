package codegen

// Model and simple-type emission for the validator back end: exported-DFA
// transition tables and step functions, straight-line simple-type parsers,
// and the standalone matcher generator used by the content-model
// benchmarks.

import (
	"fmt"
	"go/format"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/xsd"
)

// parseFnFor returns (registering on first use) the generated parser of a
// simple type. The type must have been visited during discovery.
func (v *valgen) parseFnFor(st *xsd.SimpleType) string {
	if f, ok := v.parseFns[st]; ok {
		return f.name
	}
	if _, ok := v.typeVar[st]; !ok {
		v.fail("simple type %s demanded before discovery", typeLabel(st))
		return "gvParseMissing"
	}
	f := &parseFn{name: fmt.Sprintf("gvParse%d", len(v.parseList)), st: st}
	// The straight-line emitter unrolls atomic restriction chains; list and
	// union varieties (anywhere in the chain) delegate to SimpleType.Parse
	// on the handle, which is behaviorally identical.
	for t := st; t != nil; t = t.Base {
		if t.Variety != xsd.VarietyAtomic {
			f.delegate = true
			break
		}
		if t.Builtin != nil {
			break
		}
	}
	v.parseFns[st] = f
	v.parseList = append(v.parseList, f)
	return f.name
}

// valueVarFor returns (registering on first use) the init-parsed value var
// for one fixed/default lexical of a simple type.
func (v *valgen) valueVarFor(st *xsd.SimpleType, lexical string) string {
	parse := v.parseFnFor(st)
	key := valueKey{parse: parse, lexical: lexical}
	if vv, ok := v.valueVars[key]; ok {
		return vv.name
	}
	vv := &valueVar{name: fmt.Sprintf("gvVal%d", len(v.valueList)), parse: parse, lexical: lexical}
	v.valueVars[key] = vv
	v.valueList = append(v.valueList, vv)
	return vv.name
}

// emitParseFn prints one generated simple-type parser. The unrolled form
// replays SimpleType.Parse exactly: per chain level, whitespace
// normalization against that level's effective mode, the built-in parse at
// the bottom, then each level's user facet steps base-outward — inner
// levels' own steps run first (inside their recursion), and every level
// re-checks its whole non-builtin chain against its own normalized lexical
// with its own display name, as the interpreter does.
func (v *valgen) emitParseFn(p func(string, ...any), f *parseFn) {
	if f.delegate {
		p("// %s parses values of %s (non-atomic variety: delegates to the", f.name, typeLabel(f.st))
		p("// component's Parse, which is the same code path either way).")
		p("func %s(lexical string) (xsdtypes.Value, error) {", f.name)
		p("return %s.Parse(lexical)", v.typeVar[f.st])
		p("}")
		p("")
		return
	}
	p("// %s is the straight-line parser of %s (whitespace, built-in", f.name, typeLabel(f.st))
	p("// parse, then user facet steps base-outward, as SimpleType.Parse).")
	p("func %s(lexical string) (xsdtypes.Value, error) {", f.name)
	v.emitParseLevel(p, f.st, "lexical", 0)
	p("return val, nil")
	p("}")
	p("")
}

// emitParseLevel prints one recursion level of SimpleType.Parse.
func (v *valgen) emitParseLevel(p func(string, ...any), t *xsd.SimpleType, in string, depth int) {
	norm := fmt.Sprintf("norm%d", depth)
	p("%s := xsdtypes.ApplyWhiteSpace(xsdtypes.%s, %s)", norm, wsConst(effWS(t)), in)
	switch {
	case t.Builtin != nil:
		p("val, err := %s.Builtin.Parse(%s)", v.typeVar[t], norm)
		p("if err != nil {")
		p("return xsdtypes.Value{}, err")
		p("}")
	case t.Base != nil:
		v.emitParseLevel(p, t.Base, norm, depth+1)
	default:
		p("val := xsdtypes.Value{Kind: xsdtypes.VString, Str: %s}", norm)
	}
	var steps []*xsd.SimpleType
	for s := t; s != nil && s.Builtin == nil; s = s.Base {
		steps = append(steps, s)
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if steps[i].Facets.IsEmpty() {
			continue
		}
		p("if err := %s.Facets.Check(val, %s); err != nil {", v.typeVar[steps[i]], norm)
		p("return xsdtypes.Value{}, fmt.Errorf(\"%%s: %%w\", %q, err)", displayName(t))
		p("}")
	}
}

// emitModelTables prints the expected-label and acceptance tables of one
// exported DFA.
func emitModelTables(p func(string, ...any), prefix string, t *contentmodel.DFATable, what string) {
	p("// DFA tables for the %s: per-state expected-label", what)
	p("// lists (exactly the lazy path's MatchError.Expected) and acceptance.")
	p("var (")
	p("%sStepExp = [][]string{", prefix)
	for _, st := range t.States {
		p("%s,", stringSliceLit(st.StepExpected))
	}
	p("}")
	p("%sEndExp = [][]string{", prefix)
	for _, st := range t.States {
		p("%s,", stringSliceLit(st.EndExpected))
	}
	p("}")
	p("%sAccept = []bool{", prefix)
	for _, st := range t.States {
		p("%v,", st.Accept)
	}
	p("}")
	p(")")
	p("")
}

func stringSliceLit(ss []string) string {
	var b strings.Builder
	b.WriteString("{")
	for i, s := range ss {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", s)
	}
	b.WriteString("}")
	return b.String()
}

// emitModelStep prints the unrolled transition function of one exported
// DFA: the symbol resolves to an alphabet class (named switch, then the
// wildcard-admission bucket), and a (state, class) switch takes the arc.
// It returns the successor state and the index of the leaf particle the
// symbol is attributed to, or (-1, -1) on reject.
func emitModelStep(p func(string, ...any), prefix string, t *contentmodel.DFATable) {
	p("// %sStep takes one DFA transition (successor state, attributed leaf;", prefix)
	p("// -1, -1 on reject).")
	p("func %sStep(st int, space, local string) (int, int) {", prefix)
	p("cls := -1")
	if len(t.Syms) > 0 {
		emitSymClassSwitch(p, t.Syms)
	}
	if len(t.Wilds) == 0 {
		p("if cls < 0 {")
		p("return -1, -1")
		p("}")
	} else {
		p("if cls < 0 {")
		p("// Undeclared name: route through the wildcard-admission bucket.")
		p("mask := 0")
		for i, w := range t.Wilds {
			emitAdmitsMask(p, w.Wildcard, 1<<i)
		}
		p("cls = %d + mask", len(t.Syms))
		p("}")
	}
	p("switch st {")
	for si, st := range t.States {
		var arcs []struct {
			cls int
			arc contentmodel.DFAArc
		}
		for c, a := range st.Named {
			if a.Next >= 0 {
				arcs = append(arcs, struct {
					cls int
					arc contentmodel.DFAArc
				}{c, a})
			}
		}
		for m, a := range st.Buckets {
			if a.Next >= 0 {
				arcs = append(arcs, struct {
					cls int
					arc contentmodel.DFAArc
				}{len(t.Syms) + m, a})
			}
		}
		if len(arcs) == 0 {
			continue
		}
		p("case %d:", si)
		p("switch cls {")
		for _, a := range arcs {
			p("case %d:", a.cls)
			p("return %d, %d", a.arc.Next, a.arc.Leaf)
		}
		p("}")
	}
	p("}")
	p("return -1, -1")
	p("}")
	p("")
}

// emitSymClassSwitch prints the named-symbol class resolution, grouped by
// namespace in first-seen order.
func emitSymClassSwitch(p func(string, ...any), syms []contentmodel.Symbol) {
	var spaces []string
	bySpace := map[string][]int{}
	for i, s := range syms {
		if _, ok := bySpace[s.Space]; !ok {
			spaces = append(spaces, s.Space)
		}
		bySpace[s.Space] = append(bySpace[s.Space], i)
	}
	p("switch space {")
	for _, sp := range spaces {
		p("case %q:", sp)
		p("switch local {")
		for _, i := range bySpace[sp] {
			p("case %q:", syms[i].Local)
			p("cls = %d", i)
		}
		p("}")
	}
	p("}")
}

// emitAdmitsMask prints one wildcard's namespace-admission test over the
// `space` variable, OR-ing bit into `mask` (inlining Wildcard.Admits).
func emitAdmitsMask(p func(string, ...any), w *contentmodel.Wildcard, bit int) {
	switch w.Kind {
	case contentmodel.WildAny:
		p("mask |= %d // ##any", bit)
	case contentmodel.WildOther:
		p("if space != %q && space != \"\" { // ##other", w.TargetNS)
		p("mask |= %d", bit)
		p("}")
	default:
		seen := map[string]bool{}
		var conds []string
		for _, ns := range w.Namespaces {
			if seen[ns] {
				continue
			}
			seen[ns] = true
			conds = append(conds, fmt.Sprintf("space == %q", ns))
		}
		if len(conds) == 0 {
			return // admits nothing: bit never set
		}
		p("if %s { // namespace list", strings.Join(conds, " || "))
		p("mask |= %d", bit)
		p("}")
	}
}

// MatcherSpec is one content model for GenerateMatchers.
type MatcherSpec struct {
	// Name is the exported Go name stem (the function is Match<Name>).
	Name string
	// Particle is the compiled content model.
	Particle *contentmodel.Particle
	// Comment describes the model in the generated doc comment.
	Comment string
}

// GenerateMatchers emits a standalone package of compiled matcher
// functions — the same unrolled-DFA form the validator back end embeds,
// without the schema machinery around it. The benchmark harness uses it to
// compare the generated hot loop against the lazy-DFA stepper on equal
// terms.
func GenerateMatchers(pkg string, specs []MatcherSpec) (string, error) {
	var b strings.Builder
	p := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	p("// Code generated by vdomgen (compiled matchers). DO NOT EDIT.")
	p("//")
	p("// Unrolled-DFA matcher functions over contentmodel symbols, emitted by")
	p("// codegen.GenerateMatchers for benchmarking the generated transition")
	p("// form against the lazy-DFA stepper. Verdicts (including MatchError")
	p("// text) are byte-identical to Glushkov.Match by construction.")
	p("package %s", pkg)
	p("")
	p("import (")
	p("\t\"repro/internal/contentmodel\"")
	p(")")
	p("")
	for _, spec := range specs {
		g, err := contentmodel.CompileGlushkov(spec.Particle)
		if err != nil {
			return "", fmt.Errorf("codegen: matcher %s: %w", spec.Name, err)
		}
		t, err := g.ExportDFA(0)
		if err != nil {
			return "", fmt.Errorf("codegen: matcher %s: %w", spec.Name, err)
		}
		prefix := lowerFirst(spec.Name)
		emitModelTables(p, prefix, t, spec.Comment)
		emitModelStep(p, prefix, t)
		p("// Match%s matches a child-name sequence against the %s,", spec.Name, spec.Comment)
		p("// with the verdict Glushkov.Match would produce.")
		p("func Match%s(input []contentmodel.Symbol) *contentmodel.MatchError {", spec.Name)
		p("st := 0")
		p("for i, sym := range input {")
		p("next, _ := %sStep(st, sym.Space, sym.Local)", prefix)
		p("if next < 0 {")
		p("return &contentmodel.MatchError{Index: i, Got: sym, Expected: %sStepExp[st]}", prefix)
		p("}")
		p("st = next")
		p("}")
		p("if len(input) == 0 {")
		if t.Nullable {
			p("return nil")
		} else {
			p("return &contentmodel.MatchError{Index: 0, Premature: true, Expected: %sEndExp[0]}", prefix)
		}
		p("}")
		p("if !%sAccept[st] {", prefix)
		p("return &contentmodel.MatchError{Index: len(input), Premature: true, Expected: %sEndExp[st]}", prefix)
		p("}")
		p("return nil")
		p("}")
		p("")
	}
	formatted, err := format.Source([]byte(b.String()))
	if err != nil {
		return b.String(), fmt.Errorf("codegen: generated matchers do not parse: %w", err)
	}
	return string(formatted), nil
}
