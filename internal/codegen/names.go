package codegen

// The name assignment in this file is shared with the P-XML preprocessor
// (package pxml), which must emit calls that compile against the
// generated bindings.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/normalize"
	"repro/internal/xsd"
)

// ElemNames is the set of generated identifiers for one element
// declaration.
type ElemNames struct {
	// GoType is the wrapper type name, e.g. "ShipToElement".
	GoType string
	// Create is the factory method name, e.g. "CreateShipTo".
	Create string
	// VDOM is the paper-style interface name, e.g. "shipToElement".
	VDOM string
	// Subst is the sealed substitution interface name when the element
	// heads a substitution group ("" otherwise).
	Subst string
}

// TypeNames is the set of generated identifiers for one type definition.
type TypeNames struct {
	// GoType is the generated type name ("PurchaseOrderTypeType",
	// "USAddressType", "SKU").
	GoType string
	// Create is the factory method for complex types ("" for simple).
	Create string
	// Iface is the sealed derivation interface when the complex type has
	// derived types or is abstract ("" otherwise).
	Iface string
	// VDOM is the paper-style name.
	VDOM string
}

// GroupNames is the set of generated identifiers for one promoted group.
type GroupNames struct {
	// GoType is the interface (choice) or struct (sequence) name.
	GoType string
	// Create is the struct factory for sequence groups.
	Create string
	// Marker is the unexported marker method for sealed choice
	// interfaces.
	Marker string
}

// Names assigns every generated identifier for a normalized schema.
type Names struct {
	Norm *normalize.Result

	Elements map[*xsd.ElementDecl]ElemNames
	Types    map[xsd.Type]TypeNames
	Groups   map[*xsd.ModelGroup]GroupNames

	// ElementsInOrder lists unique element declarations in deterministic
	// order (globals first, then locals by first appearance).
	ElementsInOrder []*xsd.ElementDecl

	used map[string]bool
}

// AssignNames computes all generated identifiers.
func AssignNames(norm *normalize.Result) *Names {
	n := &Names{
		Norm:     norm,
		Elements: map[*xsd.ElementDecl]ElemNames{},
		Types:    map[xsd.Type]TypeNames{},
		Groups:   map[*xsd.ModelGroup]GroupNames{},
		used: map[string]bool{
			"Document": true, "NewDocument": true, "SchemaSource": true, "RT": true,
			// Public API of the companion validator file (GenerateValidator).
			"Validate": true, "ValidateBytes": true, "Decode": true,
			"DecodeBytes": true, "JSON": true, "Marshal": true,
		},
	}
	// Types first: their names anchor everything else.
	for _, ti := range norm.Types {
		tn := TypeNames{VDOM: ti.Name + "Type"}
		goName := ti.Name
		// Complex types get the paper's "...Type" suffix exactly as in
		// its appendix A (PurchaseOrderType -> PurchaseOrderTypeType,
		// USAddress -> USAddressType); simple types keep their plain
		// name (SKU).
		if _, isComplex := ti.Type.(*xsd.ComplexType); isComplex {
			goName += "Type"
		}
		goName = exportIdent(goName)
		tn.GoType = n.unique(goName)
		if ct, ok := ti.Type.(*xsd.ComplexType); ok {
			tn.Create = n.unique("Create" + tn.GoType)
			if typeHasDerivatives(norm.Schema, ct) || ct.Abstract {
				tn.Iface = n.unique(tn.GoType + "Iface")
			}
		}
		n.Types[ti.Type] = tn
	}
	// Groups.
	for _, gi := range norm.Groups {
		gn := GroupNames{GoType: n.unique(exportIdent(gi.Name))}
		if gi.Group.Kind != xsd.Choice {
			gn.Create = n.unique("Create" + gn.GoType)
		} else {
			gn.Marker = "is" + gn.GoType
		}
		n.Groups[gi.Group] = gn
	}
	// Element declarations: globals first (sorted), then locals in
	// deterministic traversal order of the type inventory.
	for _, decl := range norm.Elements {
		n.addElement(decl)
	}
	for _, ti := range norm.Types {
		if ct, ok := ti.Type.(*xsd.ComplexType); ok && ct.Particle != nil {
			n.walkParticleElements(ct.Particle)
		}
	}
	return n
}

func (n *Names) walkParticleElements(p *xsd.Particle) {
	switch {
	case p.Element != nil:
		n.addElement(p.Element)
	case p.Group != nil:
		for _, c := range p.Group.Particles {
			n.walkParticleElements(c)
		}
	}
}

// addElement assigns names for one element declaration (idempotent).
func (n *Names) addElement(decl *xsd.ElementDecl) {
	if _, done := n.Elements[decl]; done {
		return
	}
	base := exportIdent(normalizeLocal(decl.Name.Local))
	en := ElemNames{
		GoType: n.unique(base + "Element"),
		VDOM:   lowerFirst(normalizeLocal(decl.Name.Local)) + "Element",
	}
	// The Create name follows the final GoType so collisions stay
	// aligned (ShipToElement2 -> CreateShipTo2).
	createBase := strings.TrimSuffix(en.GoType, "Element")
	en.Create = n.unique("Create" + createBase)
	if decl.Global && len(n.Norm.Schema.SubstitutionMembers(decl.Name)) > 0 {
		en.Subst = n.unique(base + "Subst")
	}
	n.Elements[decl] = en
	n.ElementsInOrder = append(n.ElementsInOrder, decl)
}

// typeHasDerivatives reports whether any complex type in the schema
// derives from ct.
func typeHasDerivatives(s *xsd.Schema, ct *xsd.ComplexType) bool {
	check := func(t xsd.Type) bool {
		other, ok := t.(*xsd.ComplexType)
		if !ok || other == ct {
			return false
		}
		for b := other.Base; b != nil; b = b.BaseType() {
			if b == xsd.Type(ct) {
				return true
			}
		}
		return false
	}
	for name, t := range s.Types {
		if name.Space == xsd.XSDNamespace {
			continue
		}
		if check(t) {
			return true
		}
	}
	for _, t := range s.AnonymousTypes() {
		if check(t) {
			return true
		}
	}
	return false
}

// unique claims a fresh identifier.
func (n *Names) unique(name string) string {
	if !n.used[name] {
		n.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", name, i)
		if !n.used[cand] {
			n.used[cand] = true
			return cand
		}
	}
}

// normalizeLocal maps an XML local name to identifier-safe camel case.
func normalizeLocal(s string) string {
	var parts []string
	cur := strings.Builder{}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			cur.WriteRune(r)
		default:
			if cur.Len() > 0 {
				parts = append(parts, cur.String())
				cur.Reset()
			}
		}
	}
	if cur.Len() > 0 {
		parts = append(parts, cur.String())
	}
	var b strings.Builder
	for i, p := range parts {
		if i == 0 {
			b.WriteString(p)
		} else {
			b.WriteString(upperFirst(p))
		}
	}
	out := b.String()
	if out == "" {
		out = "X"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "X" + out
	}
	return out
}

// exportIdent upper-cases the first letter.
func exportIdent(s string) string { return upperFirst(s) }

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'A' && s[0] <= 'Z' {
		return string(s[0]-'A'+'a') + s[1:]
	}
	return s
}

// sortedTypes returns the type inventory in generation order.
func sortedTypes(norm *normalize.Result) []normalize.TypeInfo {
	out := append([]normalize.TypeInfo(nil), norm.Types...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
