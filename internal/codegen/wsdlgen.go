package codegen

// WSDL front end: typed client and server stubs for one wsdl:service.
// Unlike the schema back ends, which specialize per-type code, the stubs
// are a thin typed surface over internal/soap — one method per operation
// on the client, one handler field per operation on the server — with the
// WSDL embedded so a generated package is self-contained: parsing it
// (once) rebuilds the service model and the compiled schema the payloads
// validate against.

import (
	"fmt"
	"go/format"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/wsdl"
)

// WSDLOptions configures WSDL stub generation.
type WSDLOptions struct {
	// Package is the Go package name of the generated file.
	Package string
	// Service selects the wsdl:service to bind; empty means the WSDL's
	// only service (an error when it defines several).
	Service string
	// Comment names the WSDL in the generated header.
	Comment string
}

// GenerateWSDLStubs parses the WSDL source — which must be self-contained
// (embedded <types>, no file references) — and emits the typed client and
// server stubs as one gofmt-formatted Go source file.
func GenerateWSDLStubs(wsdlSource string, opts WSDLOptions) (string, error) {
	d, err := wsdl.Parse([]byte(wsdlSource), nil)
	if err != nil {
		return "", fmt.Errorf("wsdlgen: %w", err)
	}
	svcName := opts.Service
	if svcName == "" {
		if len(d.Services) != 1 {
			return "", fmt.Errorf("wsdlgen: WSDL defines %d services; pick one with Service", len(d.Services))
		}
		svcName = d.Services[0].Name
	}
	svc, ok := d.Service(svcName)
	if !ok {
		return "", fmt.Errorf("wsdlgen: wsdl defines no service %q", svcName)
	}
	// Merge the ports' operations exactly like soap.NewService will at
	// runtime, so the generated surface matches the dispatch table.
	var ops []*wsdl.Operation
	seen := map[string]bool{}
	for _, port := range svc.Ports {
		for _, op := range port.Operations {
			if !seen[op.Name] {
				seen[op.Name] = true
				ops = append(ops, op)
			}
		}
	}
	methods := map[string]bool{}
	g := &wsdlGen{}
	g.header(opts, svcName, len(ops))
	g.p("const (")
	g.p("\t// ServiceName is the wsdl:service this package binds.")
	g.p("\tServiceName = %q", svcName)
	g.p(")")
	g.p("")
	g.p("// WSDLSource is the service description this package was generated from.")
	g.p("const WSDLSource = %s", goString(wsdlSource))
	g.p("")
	g.p("var (")
	g.p("\tdefsOnce sync.Once")
	g.p("\tdefs     *wsdl.Definitions")
	g.p("\tdefsErr  error")
	g.p(")")
	g.p("")
	g.p("// Definitions parses the embedded WSDL, once per process.")
	g.p("func Definitions() (*wsdl.Definitions, error) {")
	g.p("\tdefsOnce.Do(func() { defs, defsErr = wsdl.Parse([]byte(WSDLSource), nil) })")
	g.p("\treturn defs, defsErr")
	g.p("}")
	g.p("")
	g.p("// Handlers carries one handler per operation. A nil field stays")
	g.p("// unregistered: requests for it answer a Server fault, not a 500.")
	g.p("type Handlers struct {")
	for _, op := range ops {
		m, err := methodName(op.Name)
		if err != nil {
			return "", err
		}
		if methods[m] {
			return "", fmt.Errorf("wsdlgen: operations %q map to the same Go name %s", op.Name, m)
		}
		methods[m] = true
		g.p("\t%s soap.Handler", m)
	}
	g.p("}")
	g.p("")
	g.p("// NewServer builds the dispatching service with the given handlers.")
	g.p("func NewServer(h Handlers) (*soap.Service, error) {")
	g.p("\td, err := Definitions()")
	g.p("\tif err != nil {")
	g.p("\t\treturn nil, err")
	g.p("\t}")
	g.p("\ts, err := soap.NewService(d, ServiceName)")
	g.p("\tif err != nil {")
	g.p("\t\treturn nil, err")
	g.p("\t}")
	for _, op := range ops {
		m, _ := methodName(op.Name)
		g.p("\tif h.%s != nil {", m)
		g.p("\t\tif err := s.Register(%q, h.%s); err != nil {", op.Name, m)
		g.p("\t\t\treturn nil, err")
		g.p("\t\t}")
		g.p("\t}")
	}
	g.p("\treturn s, nil")
	g.p("}")
	g.p("")
	g.p("// Client is the typed client: one method per operation, payloads")
	g.p("// validated on the way out and on the way back in.")
	g.p("type Client struct {")
	g.p("\tc *soap.Client")
	g.p("}")
	g.p("")
	g.p("// NewClient builds a client for the service at endpoint.")
	g.p("func NewClient(endpoint string) (*Client, error) {")
	g.p("\td, err := Definitions()")
	g.p("\tif err != nil {")
	g.p("\t\treturn nil, err")
	g.p("\t}")
	g.p("\tc, err := soap.NewClient(d, ServiceName, endpoint)")
	g.p("\tif err != nil {")
	g.p("\t\treturn nil, err")
	g.p("\t}")
	g.p("\treturn &Client{c: c}, nil")
	g.p("}")
	g.p("")
	g.p("// Core exposes the underlying soap.Client (transport, HTTP client).")
	g.p("func (c *Client) Core() *soap.Client { return c.c }")
	g.p("")
	g.p("// Binder returns the service schema's binder, for building request")
	g.p("// values (FromJSON, DecodeBytes) and reading response values.")
	g.p("func (c *Client) Binder() *bind.Binder { return c.c.Binder() }")
	for _, op := range ops {
		m, _ := methodName(op.Name)
		g.p("")
		if op.OneWay() {
			g.p("// %s invokes the one-way %q operation (request element %s).", m, op.Name, op.Input)
			g.p("func (c *Client) %s(ctx context.Context, req *bind.Value) error {", m)
			g.p("\t_, err := c.c.Call(ctx, %q, req)", op.Name)
			g.p("\treturn err")
			g.p("}")
		} else {
			g.p("// %s invokes the %q operation (%s -> %s).", m, op.Name, op.Input, op.Output)
			g.p("func (c *Client) %s(ctx context.Context, req *bind.Value) (*bind.Value, error) {", m)
			g.p("\treturn c.c.Call(ctx, %q, req)", op.Name)
			g.p("}")
		}
	}
	formatted, err := format.Source([]byte(g.buf.String()))
	if err != nil {
		return g.buf.String(), fmt.Errorf("wsdlgen: generated code does not parse: %w", err)
	}
	return string(formatted), nil
}

// wsdlGen is a minimal emission buffer.
type wsdlGen struct {
	buf strings.Builder
}

func (g *wsdlGen) p(format string, args ...any) {
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *wsdlGen) header(opts WSDLOptions, svc string, nops int) {
	comment := opts.Comment
	if comment == "" {
		comment = "a WSDL service description"
	}
	g.p("// Code generated by wsdlgen from %s. DO NOT EDIT.", comment)
	g.p("//")
	g.p("// Typed client and server stubs for the %q service (%d operations,", svc, nops)
	g.p("// document/literal). Regenerate with `go run ./internal/gen/regen`.")
	g.p("package %s", opts.Package)
	g.p("")
	g.p("import (")
	g.p("\t\"context\"")
	g.p("\t\"sync\"")
	g.p("")
	g.p("\t\"repro/internal/bind\"")
	g.p("\t\"repro/internal/soap\"")
	g.p("\t\"repro/internal/wsdl\"")
	g.p(")")
	g.p("")
}

// methodName maps an operation name to an exported Go identifier.
func methodName(op string) (string, error) {
	var b strings.Builder
	up := true
	for _, r := range op {
		switch {
		case unicode.IsLetter(r) || (b.Len() > 0 && unicode.IsDigit(r)):
			if up {
				r = unicode.ToUpper(r)
				up = false
			}
			b.WriteRune(r)
		case r == '_' || r == '-' || r == '.':
			up = true
		default:
			return "", fmt.Errorf("wsdlgen: operation name %q does not map to a Go identifier", op)
		}
	}
	if b.Len() == 0 {
		return "", fmt.Errorf("wsdlgen: operation name %q does not map to a Go identifier", op)
	}
	return b.String(), nil
}

// goString renders s as a Go string literal, raw when possible.
func goString(s string) string {
	if !strings.ContainsAny(s, "`\r") {
		return "`" + s + "`"
	}
	return strconv.Quote(s)
}
