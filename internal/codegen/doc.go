// Package codegen generates Go V-DOM bindings from an XML Schema: one
// distinct Go type per element declaration, type definition and model
// group (paper §3), with constructors that make structurally invalid
// trees unrepresentable. It can also emit the paper's IDL notation
// (Fig. 5/6) for the golden figure tests.
//
// # Role in the pipeline
//
// codegen is the static half's back end (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): it consumes a
// normalized schema (package normalize decides every generated name) and
// emits Go source against the package vdom runtime. The name assignment
// implemented here is shared with the P-XML preprocessor (package pxml),
// which must emit calls that compile against the generated bindings; the
// checked-in outputs live under internal/gen and are golden-tested.
//
// # Concurrency
//
// Generation is a pure traversal of an immutable normalized schema into
// a fresh buffer: no package-level state is written, so distinct
// Generate calls — even over the same schema — may run concurrently.
// Generation is build-time work; nothing here runs on the serving path.
package codegen
