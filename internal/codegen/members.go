package codegen

import (
	"fmt"

	"repro/internal/xsd"
)

// MemberKind classifies a content-model member of a complex type.
type MemberKind int

// Member kinds.
const (
	// MemberElement is an element particle (paper rule 4: one attribute
	// per sequence element).
	MemberElement MemberKind = iota
	// MemberChoice is a nested choice group (rule 6: one attribute of
	// the group's super type).
	MemberChoice
	// MemberSeqGroup is a nested sequence group (promoted to its own
	// struct by the normal form).
	MemberSeqGroup
	// MemberWildcard is an xs:any particle.
	MemberWildcard
)

// Member is one generated field of a complex type (or sequence group).
type Member struct {
	Kind MemberKind
	// Field is the unexported struct field name; Accessor the exported
	// method base (Field "shipTo", Accessor "ShipTo").
	Field    string
	Accessor string
	// Min/Max are the effective occurrence bounds.
	Min, Max int
	// Elem is set for MemberElement.
	Elem *xsd.ElementDecl
	// Group is set for MemberChoice / MemberSeqGroup.
	Group *xsd.ModelGroup
}

// Repeated reports whether the member is list-valued.
func (m *Member) Repeated() bool { return m.Max == xsd.Unbounded || m.Max > 1 }

// Optional reports whether a non-repeated member may be absent.
func (m *Member) Optional() bool { return m.Min == 0 && !m.Repeated() }

// MembersOf computes the ordered member list for a complex type's content
// model (or for a promoted sequence group's particle).
func (n *Names) MembersOf(ct *xsd.ComplexType) ([]Member, error) {
	if ct.Particle == nil {
		return nil, nil
	}
	return n.membersOfParticle(ct.Particle, fmt.Sprintf("type %s", n.Types[ct].GoType))
}

// MembersOfGroup computes the member list of a promoted sequence group.
func (n *Names) MembersOfGroup(g *xsd.ModelGroup, context string) ([]Member, error) {
	var out []Member
	used := map[string]int{}
	for _, child := range g.Particles {
		m, err := n.memberFor(child, used, context)
		if err != nil {
			return nil, err
		}
		out = append(out, *m)
	}
	return out, nil
}

// membersOfParticle maps a type's effective particle to members.
func (n *Names) membersOfParticle(p *xsd.Particle, context string) ([]Member, error) {
	used := map[string]int{}
	g := p.Group
	if g == nil {
		// A bare element/wildcard as the whole content model.
		m, err := n.memberFor(p, used, context)
		if err != nil {
			return nil, err
		}
		return []Member{*m}, nil
	}
	// A repeating or choice top-level group is a single member.
	if g.Kind == xsd.Choice || p.Max == xsd.Unbounded || p.Max > 1 {
		m, err := n.memberFor(p, used, context)
		if err != nil {
			return nil, err
		}
		return []Member{*m}, nil
	}
	// Sequence (or all, which the paper treats like a sequence): one
	// member per child. An optional group (minOccurs=0) makes every
	// child optional.
	var out []Member
	for _, child := range g.Particles {
		m, err := n.memberFor(child, used, context)
		if err != nil {
			return nil, err
		}
		if p.Min == 0 && m.Min > 0 && !m.Repeated() {
			m.Min = 0
		}
		out = append(out, *m)
	}
	return out, nil
}

// memberFor builds a Member for one child particle.
func (n *Names) memberFor(p *xsd.Particle, used map[string]int, context string) (*Member, error) {
	uniqueField := func(base string) (string, string) {
		used[base]++
		if c := used[base]; c > 1 {
			base = fmt.Sprintf("%s%d", base, c)
		}
		return lowerFirst(base), upperFirst(base)
	}
	switch {
	case p.Element != nil:
		field, acc := uniqueField(normalizeLocal(p.Element.Name.Local))
		return &Member{Kind: MemberElement, Field: field, Accessor: acc, Min: p.Min, Max: p.Max, Elem: p.Element}, nil
	case p.Wildcard != nil:
		field, acc := uniqueField("any")
		return &Member{Kind: MemberWildcard, Field: field, Accessor: acc, Min: p.Min, Max: p.Max}, nil
	case p.Group != nil:
		gn, ok := n.Groups[p.Group]
		if !ok {
			// Nested groups are always named by normalization; a miss
			// indicates the particle tree changed after Normalize ran.
			return nil, fmt.Errorf("codegen: unnamed nested group in %s", context)
		}
		base := gn.GoType
		field, acc := uniqueField(lowerFirst(base))
		kind := MemberSeqGroup
		if p.Group.Kind == xsd.Choice {
			kind = MemberChoice
		}
		return &Member{Kind: kind, Field: field, Accessor: acc, Min: p.Min, Max: p.Max, Group: p.Group}, nil
	default:
		field, acc := uniqueField("empty")
		return &Member{Kind: MemberWildcard, Field: field, Accessor: acc, Min: 0, Max: 0}, nil
	}
}

// AttrMember is one generated attribute field.
type AttrMember struct {
	Use *xsd.AttributeUse
	// Field/Accessor as for Member ("attrOrderDate" / "OrderDate").
	Field    string
	Accessor string
}

// AttrsOf computes the attribute members of a complex type in declaration
// order. reserved lists accessor names already taken on the generated
// type (member accessors, Value/Content/Text and the framework methods);
// colliding attribute accessors get a numeric suffix.
func (n *Names) AttrsOf(ct *xsd.ComplexType, reserved []string) []AttrMember {
	var out []AttrMember
	used := map[string]int{
		"Value": 1, "Content": 1, "Text": 1, "Add": 1,
		"VDOMName": 1, "BuildInto": 1, "DumpInto": 1, "XMLQName": 1,
	}
	for _, r := range reserved {
		used[r] = 1
	}
	for _, use := range ct.AttributeUses {
		if use.Prohibited {
			continue
		}
		base := upperFirst(normalizeLocal(use.Decl.Name.Local))
		used[base]++
		if c := used[base]; c > 1 {
			base = fmt.Sprintf("%s%d", base, c)
		}
		out = append(out, AttrMember{Use: use, Field: "attr" + base, Accessor: base})
	}
	return out
}

// TypeAPI is the generated API surface of a complex type, shared between
// the Go emitter and the P-XML preprocessor (which must emit calls that
// compile against the generated bindings).
type TypeAPI struct {
	// Members is the ordered member list (nil for simple/mixed content).
	Members []Member
	// Attrs are the attribute members with their final accessor names.
	Attrs []AttrMember
}

// APIAttrsAndMembers computes the exact member/attribute accessor set the
// generator emits for ct.
func (n *Names) APIAttrsAndMembers(ct *xsd.ComplexType) (*TypeAPI, error) {
	var reserved []string
	var members []Member
	if ct.Kind == xsd.ContentElementOnly || ct.Kind == xsd.ContentEmpty {
		var err error
		members, err = n.MembersOf(ct)
		if err != nil {
			return nil, err
		}
		for i := range members {
			reserved = append(reserved, members[i].Accessor)
		}
	}
	return &TypeAPI{Members: members, Attrs: n.AttrsOf(ct, reserved)}, nil
}

// ContentTypeExpr returns the Go type expression used for an element
// member's value slot: the sealed substitution interface if the element
// heads a substitution group, the derivation interface if its complex
// type has derivatives, the concrete generated type otherwise. For
// simple-typed elements the element wrapper type is used.
func (n *Names) ElementSlotType(decl *xsd.ElementDecl) string {
	en := n.Elements[decl]
	if en.Subst != "" {
		return en.Subst
	}
	return "*" + en.GoType
}
