package codegen

import (
	"fmt"
	"strings"

	"repro/internal/normalize"
	"repro/internal/xsd"
)

// IDLStyle selects between the paper's two representations of choice
// groups.
type IDLStyle int

// Styles.
const (
	// IDLInheritance is the adopted design (paper Fig. 6, Appendix A):
	// a super-interface per choice, alternatives inherit from it.
	IDLInheritance IDLStyle = iota
	// IDLUnion is the rejected design (paper Fig. 5): a union type with
	// a discriminant enum per choice.
	IDLUnion
)

// GenerateIDL renders the V-DOM interfaces in the paper's IDL notation —
// the exact artifact of its Figures 5 and 6 and Appendix A. It exists to
// regenerate those figures; Go programs use Generate instead.
func GenerateIDL(schemaSource string, style IDLStyle, scheme normalize.Scheme) (string, error) {
	schema, err := xsd.ParseString(schemaSource, nil)
	if err != nil {
		return "", err
	}
	norm, err := normalize.Normalize(schema, scheme)
	if err != nil {
		return "", err
	}
	w := &idlWriter{schema: schema, norm: norm, style: style}
	// Global elements first (Appendix A order: purchaseOrderElement,
	// commentElement, then the types).
	for _, decl := range norm.Elements {
		w.globalElement(decl)
	}
	for _, ti := range norm.Types {
		// Promoted anonymous types render as top-level interfaces too —
		// the paper nests them inside their owner, but the member lines
		// are identical.
		if ct, ok := ti.Type.(*xsd.ComplexType); ok {
			w.complexType(ti.Name, ct)
		}
	}
	for _, ti := range norm.Types {
		if st, ok := ti.Type.(*xsd.SimpleType); ok && !ti.Promoted && st.Base != nil {
			fmt.Fprintf(&w.b, "interface %s: %s { ... }\n\n", ti.Name, w.simpleName(st.Base))
		}
	}
	return w.b.String(), nil
}

type idlWriter struct {
	schema *xsd.Schema
	norm   *normalize.Result
	style  IDLStyle
	b      strings.Builder
}

// simpleName renders a simple type's IDL name (built-ins become primitive
// names as in the paper: string, decimal, date, NMToken...).
func (w *idlWriter) simpleName(st *xsd.SimpleType) string {
	if name, ok := w.norm.TypeName(st); ok {
		return name
	}
	if st.Builtin != nil {
		switch st.Builtin.Name {
		case "date":
			return "Date"
		case "NMTOKEN":
			return "NMToken"
		default:
			return st.Builtin.Name
		}
	}
	return "string"
}

func (w *idlWriter) typeName(t xsd.Type) string {
	switch x := t.(type) {
	case *xsd.SimpleType:
		return w.simpleName(x)
	case *xsd.ComplexType:
		if name, ok := w.norm.TypeName(x); ok {
			return name + "Type"
		}
		return "anyType"
	}
	return "anyType"
}

// globalElement renders "interface xElement { attribute T content; }".
func (w *idlWriter) globalElement(decl *xsd.ElementDecl) {
	fmt.Fprintf(&w.b, "interface %sElement {\n", lowerFirst(normalizeLocal(decl.Name.Local)))
	fmt.Fprintf(&w.b, "  attribute %s content;\n", w.typeName(decl.Type))
	w.b.WriteString("}\n\n")
}

// complexType renders the type interface with nested element interfaces
// (the paper nests local element interfaces inside the type, Appendix A).
func (w *idlWriter) complexType(name string, ct *xsd.ComplexType) {
	fmt.Fprintf(&w.b, "interface %sType {\n", name)
	if ct.Particle != nil {
		w.particleBody(ct.Particle, name)
	}
	for _, use := range ct.AttributeUses {
		if use.Prohibited {
			continue
		}
		fmt.Fprintf(&w.b, "  attribute %s %s;\n", w.simpleName(use.Decl.Type), use.Decl.Name.Local)
	}
	w.b.WriteString("}\n\n")
}

// particleBody renders nested interfaces and member attributes.
func (w *idlWriter) particleBody(p *xsd.Particle, owner string) {
	g := p.Group
	if g == nil {
		w.memberLines([]*xsd.Particle{p}, owner)
		return
	}
	if g.Kind == xsd.Choice {
		w.choiceBody(p, owner)
		return
	}
	if p.Max == xsd.Unbounded || p.Max > 1 {
		// List expression: one generated list attribute (paper rule 5).
		inner := w.groupMemberType(p, owner)
		fmt.Fprintf(&w.b, "  attribute list<%s> %sList;\n", inner, lowerFirst(inner))
		return
	}
	w.memberLines(g.Particles, owner)
}

// memberLines renders one nested interface + attribute per member.
func (w *idlWriter) memberLines(children []*xsd.Particle, owner string) {
	// First the nested interfaces for locally used elements.
	for _, c := range children {
		if c.Element == nil {
			continue
		}
		if !c.Element.Global {
			w.nestedElementInterface(c.Element, "")
		}
	}
	w.b.WriteString("\n")
	for _, c := range children {
		switch {
		case c.Element != nil:
			local := c.Element.Name.Local
			if c.Max == xsd.Unbounded || c.Max > 1 {
				fmt.Fprintf(&w.b, "  attribute list<%sElement> %sList;\n", lowerFirst(normalizeLocal(local)), lowerFirst(normalizeLocal(local)))
			} else {
				fmt.Fprintf(&w.b, "  attribute %sElement %s;\n", lowerFirst(normalizeLocal(local)), local)
			}
		case c.Group != nil && c.Group.Kind == xsd.Choice:
			w.choiceBody(c, owner)
		case c.Group != nil:
			gname, _ := w.norm.GroupName(c.Group)
			fmt.Fprintf(&w.b, "  attribute %s %s;\n", gname, lowerFirst(gname))
		case c.Wildcard != nil:
			w.b.WriteString("  attribute any anyContent;\n")
		}
	}
}

// nestedElementInterface renders "interface xElement: Super {...}".
func (w *idlWriter) nestedElementInterface(decl *xsd.ElementDecl, super string) {
	name := lowerFirst(normalizeLocal(decl.Name.Local)) + "Element"
	if super != "" {
		fmt.Fprintf(&w.b, "  interface %s: %s { attribute %s content;}\n", name, super, w.typeName(decl.Type))
	} else {
		fmt.Fprintf(&w.b, "  interface %s { attribute %s content;}\n", name, w.typeName(decl.Type))
	}
}

// choiceBody renders the choice in the selected style.
func (w *idlWriter) choiceBody(p *xsd.Particle, owner string) {
	g := p.Group
	gname, ok := w.norm.GroupName(g)
	if !ok {
		gname = owner + "CGroup"
	}
	var altNames []string
	for _, alt := range g.Particles {
		if alt.Element != nil {
			altNames = append(altNames, alt.Element.Name.Local)
		}
	}
	switch w.style {
	case IDLUnion:
		// Fig. 5: a union with a discriminant enum.
		fmt.Fprintf(&w.b, "  typedef union %s\n", gname)
		fmt.Fprintf(&w.b, "  switch (enum %sST(%s)){\n", strings.TrimSuffix(gname, "Group"), strings.Join(altNames, ","))
		for _, alt := range g.Particles {
			if alt.Element == nil {
				continue
			}
			local := alt.Element.Name.Local
			fmt.Fprintf(&w.b, "    case %s: %sElement %s;\n", local, lowerFirst(normalizeLocal(local)), local)
		}
		w.b.WriteString("  }\n")
		fmt.Fprintf(&w.b, "  attribute %s %s;\n", gname, strings.TrimSuffix(gname, "Group"))
	default:
		// Fig. 6: an empty super-interface, alternatives inherit.
		fmt.Fprintf(&w.b, "  interface %s {}\n", gname)
		for _, alt := range g.Particles {
			if alt.Element == nil {
				continue
			}
			w.nestedElementInterface(alt.Element, gname)
		}
		fmt.Fprintf(&w.b, "  attribute %s %s;\n", gname, strings.TrimSuffix(gname, "Group"))
	}
}

// groupMemberType names the element type of a repeating group member.
func (w *idlWriter) groupMemberType(p *xsd.Particle, owner string) string {
	if gname, ok := w.norm.GroupName(p.Group); ok {
		return gname
	}
	return owner + "Item"
}
