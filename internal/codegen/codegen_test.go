package codegen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen/cmbench"
	"repro/internal/gen/manifest"
	"repro/internal/normalize"
	"repro/internal/schemas"
	"repro/internal/wml"
	"repro/internal/xsd"
)

func generate(t *testing.T, src string, scheme normalize.Scheme) string {
	t.Helper()
	code, err := Generate(src, Options{Package: "x", Scheme: scheme, SchemaComment: "test"})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return code
}

// TestGoldenGeneratedPackages verifies the checked-in binding AND
// validator packages under internal/gen/ are exactly what the generator
// produces today, iterating the same manifest regen writes from.
func TestGoldenGeneratedPackages(t *testing.T) {
	compare := func(path, code string) {
		t.Helper()
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if string(want) != code {
			t.Errorf("%s is stale: run `go run ./internal/gen/regen`", path)
		}
	}
	for _, tgt := range manifest.Targets {
		opts := Options{
			Package: tgt.Pkg, Scheme: normalize.SchemePaper, SchemaComment: tgt.Comment,
		}
		if tgt.CorpusGlob != "" {
			corpus, err := manifest.LoadCorpus(filepath.Join("..", ".."), tgt.CorpusGlob)
			if err != nil {
				t.Fatalf("%s: corpus: %v", tgt.Pkg, err)
			}
			if len(corpus) == 0 {
				t.Fatalf("%s: corpus glob %q matched nothing", tgt.Pkg, tgt.CorpusGlob)
			}
			for _, d := range corpus {
				opts.Corpus = append(opts.Corpus, CorpusDoc{Name: d.Name, Source: d.Source})
			}
		}
		code, err := Generate(tgt.Source, opts)
		if err != nil {
			t.Fatalf("%s: %v", tgt.Pkg, err)
		}
		compare(filepath.Join("..", "gen", tgt.Pkg, tgt.Pkg+".go"), code)
		vcode, err := GenerateValidator(tgt.Source, opts)
		if err != nil {
			t.Fatalf("%s: validator: %v", tgt.Pkg, err)
		}
		compare(filepath.Join("..", "gen", tgt.Pkg, tgt.Pkg+"_validator.go"), vcode)
	}
	for _, tgt := range manifest.WSDLTargets {
		code, err := GenerateWSDLStubs(tgt.Source, WSDLOptions{
			Package: tgt.Pkg, Service: tgt.Service, Comment: tgt.Comment,
		})
		if err != nil {
			t.Fatalf("%s: %v", tgt.Pkg, err)
		}
		compare(filepath.Join("..", "gen", tgt.Pkg, tgt.Pkg+".go"), code)
	}
	matchers, err := GenerateMatchers("cmbench", []MatcherSpec{
		{Name: "Items", Particle: cmbench.ItemsModel(), Comment: "the purchase-order items model (item*)"},
		{Name: "WideChoice", Particle: cmbench.WideChoiceModel(), Comment: "the scaled-down E10 synthetic wide-choice model (16 groups x 8 alternatives)"},
	})
	if err != nil {
		t.Fatalf("cmbench: %v", err)
	}
	compare(filepath.Join("..", "gen", "cmbench", "matchers.go"), matchers)
}

// TestFig5UnionInterface regenerates the paper's Figure 5: the rejected
// union-type representation of the address choice under synthesized
// naming.
func TestFig5UnionInterface(t *testing.T) {
	idl, err := GenerateIDL(schemas.EvolvedPurchaseOrderXSD, IDLUnion, normalize.SchemeSynthesized)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"typedef union singAddrORtwoAddrGroup",
		"switch (enum singAddrORtwoAddrST(singAddr,twoAddr)){",
		"case singAddr: singAddrElement singAddr;",
		"case twoAddr: twoAddrElement twoAddr;",
		"attribute singAddrORtwoAddrGroup singAddrORtwoAddr;",
		"attribute commentElement comment;",
		"attribute itemsElement items;",
	} {
		if !strings.Contains(idl, want) {
			t.Errorf("Fig. 5 output missing %q:\n%s", want, idl)
		}
	}
}

// TestFig6InheritanceInterface regenerates the paper's Figure 6: the
// adopted inheritance representation under the merged naming scheme.
func TestFig6InheritanceInterface(t *testing.T) {
	idl, err := GenerateIDL(schemas.EvolvedPurchaseOrderXSD, IDLInheritance, normalize.SchemePaper)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"interface PurchaseOrderTypeCC1Group {}",
		"interface singAddrElement: PurchaseOrderTypeCC1Group { attribute USAddressType content;}",
		"interface twoAddrElement: PurchaseOrderTypeCC1Group { attribute twoAddressType content;}",
		"attribute PurchaseOrderTypeCC1Group PurchaseOrderTypeCC1;",
	} {
		if !strings.Contains(idl, want) {
			t.Errorf("Fig. 6 output missing %q:\n%s", want, idl)
		}
	}
}

// TestAppendixAInterfaces regenerates the interfaces of the paper's
// Appendix A from the Fig. 2/3 schema.
func TestAppendixAInterfaces(t *testing.T) {
	idl, err := GenerateIDL(schemas.PurchaseOrderXSD, IDLInheritance, normalize.SchemePaper)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"interface purchaseOrderElement {\n  attribute PurchaseOrderTypeType content;\n}",
		"attribute string content", // commentElement
		"interface PurchaseOrderTypeType {",
		"attribute shipToElement shipTo;",
		"attribute billToElement billTo;",
		"attribute commentElement comment;",
		"attribute itemsElement items;",
		"attribute Date orderDate;",
		"interface USAddressType {",
		"interface zipElement { attribute decimal content;}",
		"attribute NMToken country;",
		"attribute SKU partNum;",
		"interface SKU: string { ... }",
	} {
		if !strings.Contains(idl, want) {
			t.Errorf("Appendix A output missing %q:\n%s", want, idl)
		}
	}
}

// TestGeneratedCodeShape spot-checks the Go emission.
func TestGeneratedCodeShape(t *testing.T) {
	code := generate(t, schemas.PurchaseOrderXSD, normalize.SchemePaper)
	for _, want := range []string{
		"type PurchaseOrderTypeType struct",
		"func (d *Document) CreatePurchaseOrderTypeType(shipTo *ShipToElement, billTo *BillToElement, items *ItemsElement) *PurchaseOrderTypeType",
		"func (d *Document) CreateShipTo(content *USAddressType) *ShipToElement",
		"type SKU string",
		"func (t *ItemsType) AddItem(v *ItemElement) *ItemsType",
		"RT.CheckAttr(\"PurchaseOrderType\", \"orderDate\", lexical)",
		"vdom.CheckOccurs(\"ItemsType.item\", len(t.item), 0, -1)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

// TestSchemeChangesGeneratedNames: the same schema under different naming
// schemes yields different group type names (E6's mechanism).
func TestSchemeChangesGeneratedNames(t *testing.T) {
	paper := generate(t, schemas.EvolvedPurchaseOrderXSD, normalize.SchemePaper)
	synth := generate(t, schemas.EvolvedPurchaseOrderXSD, normalize.SchemeSynthesized)
	if !strings.Contains(paper, "type PurchaseOrderTypeCC1Group interface") {
		t.Error("paper scheme should use inherited choice name")
	}
	if !strings.Contains(synth, "type SingAddrORtwoAddrGroup interface") {
		t.Errorf("synthesized scheme should use member-derived name")
	}
}

// TestGenerateRejectsBadSchema: generator surfaces schema errors.
func TestGenerateRejectsBadSchema(t *testing.T) {
	if _, err := Generate("<not-a-schema/>", Options{Package: "x"}); err == nil {
		t.Error("expected error for a non-schema document")
	}
}

// TestGenerateAllSchemasParseable: every schema in the repository
// generates code that at least parses as Go (format.Source ran inside
// Generate) under all three schemes.
func TestGenerateAllSchemasAllSchemes(t *testing.T) {
	sources := []string{
		schemas.PurchaseOrderXSD,
		schemas.EvolvedPurchaseOrderXSD,
		schemas.AddressDerivationXSD,
		schemas.NamedGroupXSD,
		schemas.NamespacedOrderXSD,
		schemas.ComplexGroupsXSD,
		schemas.WildcardEnvelopeXSD,
		wml.Schema,
	}
	for i, src := range sources {
		for _, scheme := range []normalize.Scheme{normalize.SchemePaper, normalize.SchemeSynthesized, normalize.SchemeInherited} {
			opts := Options{Package: "p", Scheme: scheme, SchemaComment: "t"}
			if _, err := Generate(src, opts); err != nil {
				t.Errorf("schema %d scheme %v: %v", i, scheme, err)
			}
			if _, err := GenerateValidator(src, opts); err != nil {
				t.Errorf("schema %d scheme %v: validator: %v", i, scheme, err)
			}
		}
	}
}

// TestNamesDeterminism: two runs assign identical names.
func TestNamesDeterminism(t *testing.T) {
	s1, _ := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	s2, _ := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	n1, _ := normalize.Normalize(s1, normalize.SchemePaper)
	n2, _ := normalize.Normalize(s2, normalize.SchemePaper)
	a, b := AssignNames(n1), AssignNames(n2)
	var la, lb []string
	for _, d := range a.ElementsInOrder {
		la = append(la, a.Elements[d].GoType)
	}
	for _, d := range b.ElementsInOrder {
		lb = append(lb, b.Elements[d].GoType)
	}
	if strings.Join(la, ",") != strings.Join(lb, ",") {
		t.Errorf("element name order differs:\n%v\n%v", la, lb)
	}
}
