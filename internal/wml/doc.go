// Package wml ships the WML (Wireless Markup Language) schema subset used
// by the paper's §5 example: a deck of cards, paragraphs with mixed
// content, select/option menus, bold text, line breaks and anchors — the
// constructs of the media-archive directory browser in Figures 8, 10 and
// 11.
//
// # Role in the pipeline
//
// wml is the second vocabulary (beside the purchase order in package
// schemas) driven through the whole pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): its schema generates
// the wmlgen bindings, the §5 directory-browser page exercises P-XML
// mixed content, and the media-archive example serves it.
//
// # Concurrency
//
// The package exports only string constants and pure helpers — safe from
// any goroutine.
package wml
