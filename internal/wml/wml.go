package wml

// Schema is the WML subset as an XML Schema (the paper assumes "a given
// Wml schema"; WML 1.3 was published as a DTD, transcribed here to XSD).
const Schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:element name="wml" type="Wml"/>

  <xsd:complexType name="Wml">
    <xsd:sequence>
      <xsd:element name="card" type="Card" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Card">
    <xsd:sequence>
      <xsd:element name="p" type="P" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="id" type="xsd:NMTOKEN"/>
    <xsd:attribute name="title" type="xsd:string"/>
  </xsd:complexType>

  <xsd:complexType name="P" mixed="true">
    <xsd:choice minOccurs="0" maxOccurs="unbounded">
      <xsd:element name="b" type="xsd:string"/>
      <xsd:element name="br" type="Br"/>
      <xsd:element name="select" type="Select"/>
      <xsd:element name="a" type="A"/>
    </xsd:choice>
    <xsd:attribute name="align" type="Alignment"/>
  </xsd:complexType>

  <xsd:simpleType name="Alignment">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="left"/>
      <xsd:enumeration value="center"/>
      <xsd:enumeration value="right"/>
    </xsd:restriction>
  </xsd:simpleType>

  <xsd:complexType name="Br"/>

  <xsd:complexType name="A">
    <xsd:simpleContent>
      <xsd:extension base="xsd:string">
        <xsd:attribute name="href" type="xsd:anyURI" use="required"/>
        <xsd:attribute name="title" type="xsd:string"/>
      </xsd:extension>
    </xsd:simpleContent>
  </xsd:complexType>

  <xsd:complexType name="Select">
    <xsd:sequence>
      <xsd:element name="option" type="Option" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="name" type="xsd:NMTOKEN"/>
    <xsd:attribute name="title" type="xsd:string"/>
    <xsd:attribute name="multiple" type="xsd:boolean"/>
  </xsd:complexType>

  <xsd:complexType name="Option">
    <xsd:simpleContent>
      <xsd:extension base="xsd:string">
        <xsd:attribute name="value" type="xsd:string"/>
        <xsd:attribute name="title" type="xsd:string"/>
        <xsd:attribute name="onpick" type="xsd:anyURI"/>
      </xsd:extension>
    </xsd:simpleContent>
  </xsd:complexType>

</xsd:schema>
`
