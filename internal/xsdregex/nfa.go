package xsdregex

// Thompson NFA construction and simulation.

// nfaState is one NFA state. Each state has at most one character-set
// transition plus epsilon transitions, which is all Thompson construction
// needs.
type nfaState struct {
	// set is the label of the character transition; nil when the state
	// has only epsilon edges.
	set *CharSet
	// out is the target of the character transition.
	out int
	// eps are epsilon transition targets.
	eps []int
	// accept marks the final state.
	accept bool
}

// nfa is a compiled Thompson automaton.
type nfa struct {
	states []nfaState
	start  int
}

// nfaBuilder accumulates states.
type nfaBuilder struct {
	states []nfaState
}

func (b *nfaBuilder) add() int {
	b.states = append(b.states, nfaState{out: -1})
	return len(b.states) - 1
}

// frag is an NFA fragment with one entry and one exit state.
type frag struct{ in, out int }

// compileNFA builds the Thompson NFA for the AST.
func compileNFA(n Node) *nfa {
	b := &nfaBuilder{}
	f := b.compile(n)
	b.states[f.out].accept = true
	return &nfa{states: b.states, start: f.in}
}

func (b *nfaBuilder) compile(n Node) frag {
	switch x := n.(type) {
	case Empty:
		s := b.add()
		return frag{s, s}
	case Chars:
		in := b.add()
		out := b.add()
		set := x.Set
		b.states[in].set = &set
		b.states[in].out = out
		return frag{in, out}
	case Concat:
		cur := b.compile(x.Items[0])
		for _, item := range x.Items[1:] {
			next := b.compile(item)
			b.states[cur.out].eps = append(b.states[cur.out].eps, next.in)
			cur = frag{cur.in, next.out}
		}
		return cur
	case Alt:
		in := b.add()
		out := b.add()
		for _, alt := range x.Alts {
			f := b.compile(alt)
			b.states[in].eps = append(b.states[in].eps, f.in)
			b.states[f.out].eps = append(b.states[f.out].eps, out)
		}
		return frag{in, out}
	case Repeat:
		return b.compileRepeat(x)
	default:
		panic("xsdregex: unknown AST node")
	}
}

// repeatExpandLimit bounds how far bounded quantifiers are unrolled. The
// XSD dialect allows {n,m} with large n; unrolling is fine for the counts
// seen in schemas, and the limit keeps adversarial patterns in check.
const repeatExpandLimit = 4096

func (b *nfaBuilder) compileRepeat(x Repeat) frag {
	// {0,-1} (star) and {1,-1} (plus) get the classic constructions;
	// bounded counts are unrolled: sub{n,m} = sub^n (sub?)^(m-n),
	// sub{n,} = sub^n sub*.
	star := func(sub Node) frag {
		in := b.add()
		out := b.add()
		f := b.compile(sub)
		b.states[in].eps = append(b.states[in].eps, f.in, out)
		b.states[f.out].eps = append(b.states[f.out].eps, f.in, out)
		return frag{in, out}
	}
	min, max := x.Min, x.Max
	if min > repeatExpandLimit {
		min = repeatExpandLimit
	}
	if max > repeatExpandLimit {
		max = repeatExpandLimit
	}
	var parts []frag
	for i := 0; i < min; i++ {
		parts = append(parts, b.compile(x.Sub))
	}
	switch {
	case max < 0:
		parts = append(parts, star(x.Sub))
	default:
		for i := min; i < max; i++ {
			f := b.compile(x.Sub)
			// Make optional: eps from entry to exit.
			b.states[f.in].eps = append(b.states[f.in].eps, f.out)
			parts = append(parts, f)
		}
	}
	if len(parts) == 0 {
		s := b.add()
		return frag{s, s}
	}
	cur := parts[0]
	for _, next := range parts[1:] {
		b.states[cur.out].eps = append(b.states[cur.out].eps, next.in)
		cur = frag{cur.in, next.out}
	}
	return cur
}

// addClosure adds s and everything epsilon-reachable from it to the set.
func (m *nfa) addClosure(s int, set []bool, list *[]int) {
	if set[s] {
		return
	}
	set[s] = true
	*list = append(*list, s)
	for _, e := range m.states[s].eps {
		m.addClosure(e, set, list)
	}
}

// match runs the NFA over input and reports whether the whole string is
// accepted. Two scratch bitsets make the simulation allocation-light.
func (m *nfa) match(input string) bool {
	cur := make([]bool, len(m.states))
	next := make([]bool, len(m.states))
	var curList, nextList []int
	m.addClosure(m.start, cur, &curList)
	for _, r := range input {
		if len(curList) == 0 {
			return false
		}
		for i := range next {
			next[i] = false
		}
		nextList = nextList[:0]
		for _, s := range curList {
			st := &m.states[s]
			if st.set != nil && st.set.Contains(r) {
				m.addClosure(st.out, next, &nextList)
			}
		}
		cur, next = next, cur
		curList, nextList = nextList, curList
	}
	for _, s := range curList {
		if m.states[s].accept {
			return true
		}
	}
	return false
}
