// Package xsdregex implements the regular-expression dialect of XML Schema
// Part 2 (Appendix F), used by the pattern facet — e.g. the paper's SKU
// pattern `\d{3}-[A-Z]{2}`.
//
// Patterns are parsed into an AST, compiled to a Thompson NFA, and matched
// by NFA simulation (linear time, no state blowup). A deterministic
// automaton built with the Aho–Sethi–Ullman followpos construction — the
// algorithm the paper's §6 cites for its preprocessor generator — is also
// available via ToDFA, and is benchmarked against the NFA simulation.
//
// XML Schema regular expressions are always anchored: the pattern must
// match the entire lexical value. There are no anchors, backreferences or
// non-greedy operators in the dialect.
//
// # Role in the pipeline
//
// xsdregex backs the pattern facet everywhere simple-type values are
// checked: the schema parser (package xsd) compiles each xs:pattern once
// at parse time, and the facet checker (package xsdtypes) runs the
// compiled automata on the validator's and vdom runtime's hot paths.
//
// # Concurrency
//
// A compiled Regexp is immutable and safe for concurrent use: NFA
// simulation keeps its scratch bitsets on the call stack, the DFA is a
// read-only table walk, and the lazy NFA→DFA upgrade (ToDFA/EnableDFA)
// is built under a sync.Once and published atomically, so racing
// MatchString calls see either the NFA or the finished DFA — never a
// partial build.
package xsdregex
