package xsdregex

import (
	"testing"
	"testing/quick"
)

// matchCase is a pattern/input/expected triple exercised against both the
// NFA simulation and the DFA.
type matchCase struct {
	pattern string
	input   string
	want    bool
}

var matchCases = []matchCase{
	// The paper's SKU pattern (Fig. 3, line 59).
	{`\d{3}-[A-Z]{2}`, "926-AA", true},
	{`\d{3}-[A-Z]{2}`, "926-aa", false},
	{`\d{3}-[A-Z]{2}`, "92-AA", false},
	{`\d{3}-[A-Z]{2}`, "9261-AA", false},
	{`\d{3}-[A-Z]{2}`, "926-AAX", false}, // anchored
	{`\d{3}-[A-Z]{2}`, "", false},

	// Literals and implicit anchoring.
	{`abc`, "abc", true},
	{`abc`, "xabc", false},
	{`abc`, "abcx", false},
	{``, "", true},
	{``, "x", false},

	// Quantifiers.
	{`a?`, "", true},
	{`a?`, "a", true},
	{`a?`, "aa", false},
	{`a*`, "", true},
	{`a*`, "aaaa", true},
	{`a+`, "", false},
	{`a+`, "aaa", true},
	{`a{2,4}`, "a", false},
	{`a{2,4}`, "aa", true},
	{`a{2,4}`, "aaaa", true},
	{`a{2,4}`, "aaaaa", false},
	{`a{3}`, "aaa", true},
	{`a{3}`, "aa", false},
	{`a{2,}`, "aa", true},
	{`a{2,}`, "aaaaaa", true},
	{`a{2,}`, "a", false},
	{`a{0,2}`, "", true},
	{`(ab){2}`, "abab", true},
	{`(ab){2}`, "aba", false},

	// Alternation and grouping.
	{`cat|dog`, "cat", true},
	{`cat|dog`, "dog", true},
	{`cat|dog`, "cow", false},
	{`(a|b)*c`, "ababc", true},
	{`(a|b)*c`, "c", true},
	{`(a|b)*c`, "abd", false},
	{`a(b|)c`, "abc", true},
	{`a(b|)c`, "ac", true},

	// Character classes.
	{`[abc]+`, "cab", true},
	{`[abc]+`, "cad", false},
	{`[a-z]+`, "hello", true},
	{`[a-z]+`, "Hello", false},
	{`[^a-z]+`, "ABC1", true},
	{`[^a-z]+`, "aBC", false},
	{`[-+]?[0-9]+`, "-42", true},
	{`[-+]?[0-9]+`, "+7", true},
	{`[-+]?[0-9]+`, "13", true},
	{`[-+]?[0-9]+`, "i13", false},
	{`[a\-c]`, "-", true},
	{`[\]]`, "]", true},

	// Class subtraction (XSD-specific).
	{`[a-z-[aeiou]]+`, "bcdfg", true},
	{`[a-z-[aeiou]]+`, "bcae", false},
	{`[\w-[\d]]+`, "abc", true},
	{`[\w-[\d]]+`, "ab1", false},

	// Multi-char escapes.
	{`\s*`, " \t\n\r", true},
	{`\S+`, "abc", true},
	{`\S+`, "a b", false},
	{`\w+`, "hello_?", false},
	{`\d+`, "0123456789", true},
	{`\d+`, "12a", false},
	{`\D+`, "abc", true},
	{`\i\c*`, "po:name", true},
	{`\i\c*`, "1bad", false},

	// Single-char escapes.
	{`a\.b`, "a.b", true},
	{`a\.b`, "axb", false},
	{`a.b`, "axb", true},
	{`a.b`, "a\nb", false}, // '.' excludes newline
	{`\(\)`, "()", true},
	{`\\`, `\`, true},
	{`\n`, "\n", true},
	{`\t`, "\t", true},

	// Category escapes.
	{`\p{Lu}+`, "ABC", true},
	{`\p{Lu}+`, "AbC", false},
	{`\p{L}+`, "héllo", true},
	{`\P{L}+`, "123!", true},
	{`\p{Nd}{2}`, "42", true},
	{`\p{IsBasicLatin}+`, "plain", true},
	{`\p{IsBasicLatin}+`, "héllo", false},
	{`\p{IsGreek}+`, "αβγ", true},

	// Realistic XSD patterns.
	{`[0-9]{4}-[0-9]{2}-[0-9]{2}`, "1999-05-21", true},
	{`[A-Z]{2}[0-9]{2}[A-Z0-9]{1,30}`, "DE89370400440532013000", true},
	{`([a-zA-Z0-9._%+-])+@([a-zA-Z0-9.-])+`, "a.b@example.com", true},
	{`(\+|-)?([0-9]+(\.[0-9]*)?|\.[0-9]+)`, "-3.14", true},
	{`(\+|-)?([0-9]+(\.[0-9]*)?|\.[0-9]+)`, "3.", true},
	{`(\+|-)?([0-9]+(\.[0-9]*)?|\.[0-9]+)`, ".", false},
	{`[^:]*`, "no-colon-here", true},
	{`[^:]*`, "with:colon", false},
}

func TestMatchNFA(t *testing.T) {
	for _, c := range matchCases {
		re, err := Compile(c.pattern)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.pattern, err)
			continue
		}
		if got := re.MatchString(c.input); got != c.want {
			t.Errorf("NFA %q.Match(%q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestMatchDFA(t *testing.T) {
	for _, c := range matchCases {
		re := MustCompile(c.pattern)
		if err := re.EnableDFA(); err != nil {
			t.Errorf("EnableDFA(%q): %v", c.pattern, err)
			continue
		}
		if got := re.MatchString(c.input); got != c.want {
			t.Errorf("DFA %q.Match(%q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`a{2`, `a{`, `a{x}`, `a{3,1}`, `(`, `(a`, `a)`, `[`, `[]`, `[a`,
		`\q`, `\p{Nope}`, `\p`, `a**`, `*a`, `+`, `?x`, `a\`,
	}
	for _, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q): expected error", p)
		}
	}
}

func TestCharSetOps(t *testing.T) {
	a := NewCharSet(RuneRange{'a', 'f'}, RuneRange{'x', 'z'})
	b := NewCharSet(RuneRange{'d', 'y'})
	if got := a.Intersect(b); got.Count() != 5 { // d,e,f,x,y
		t.Errorf("intersect count: %d (%v)", got.Count(), got.Ranges)
	}
	if got := a.Union(b); got.Count() != int64('z'-'a')+1 {
		t.Errorf("union count: %d", got.Count())
	}
	if got := a.Subtract(b); got.Count() != 4 { // a,b,c,z
		t.Errorf("subtract count: %d (%v)", got.Count(), got.Ranges)
	}
	neg := a.Negate()
	if neg.Contains('b') || !neg.Contains('g') || !neg.Contains(0) || !neg.Contains(maxRune) {
		t.Errorf("negate wrong")
	}
	if !a.Negate().Negate().Contains('a') {
		t.Errorf("double negation lost members")
	}
}

func TestCharSetNormalization(t *testing.T) {
	s := NewCharSet(RuneRange{'c', 'e'}, RuneRange{'a', 'b'}, RuneRange{'f', 'h'})
	if len(s.Ranges) != 1 || s.Ranges[0] != (RuneRange{'a', 'h'}) {
		t.Errorf("adjacent ranges not merged: %v", s.Ranges)
	}
}

// TestNFADFAAgree is a property test: on random ASCII inputs, the NFA
// simulation and the followpos DFA must agree for every pattern.
func TestNFADFAAgree(t *testing.T) {
	patterns := []string{
		`\d{3}-[A-Z]{2}`, `(a|b)*abb`, `[a-c]{2,5}x?`, `a+b*c{1,3}`,
		`(ab|ba)+`, `\w+-\w+`,
	}
	for _, p := range patterns {
		re := MustCompile(p)
		dfa, err := re.ToDFA()
		if err != nil {
			t.Fatalf("ToDFA(%q): %v", p, err)
		}
		f := func(bs []byte) bool {
			// Map bytes to a small alphabet so matches are likely.
			rs := make([]rune, len(bs))
			for i, b := range bs {
				rs[i] = rune("abcx-012ABZ"[int(b)%11])
			}
			s := string(rs)
			return re.MatchNFA(s) == dfa.Match(s)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("NFA/DFA disagree for %q: %v", p, err)
		}
	}
}

func TestDFAStateCount(t *testing.T) {
	re := MustCompile(`(a|b)*abb`)
	dfa, err := re.ToDFA()
	if err != nil {
		t.Fatal(err)
	}
	// The classic dragon-book example yields 4 states.
	if dfa.NumStates() != 4 {
		t.Errorf("(a|b)*abb DFA states: got %d, want 4", dfa.NumStates())
	}
}

func TestLargeBoundedRepeat(t *testing.T) {
	re := MustCompile(`a{1,100}`)
	if !re.MatchString(stringRepeat("a", 100)) || re.MatchString(stringRepeat("a", 101)) {
		t.Errorf("bounded repeat boundary wrong")
	}
}

func stringRepeat(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}
