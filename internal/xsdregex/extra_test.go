package xsdregex

import (
	"strings"
	"testing"
)

// TestDFAStateCapFallback: a pattern engineered to blow up determinization
// must return ErrTooComplex from ToDFA while NFA matching keeps working.
func TestDFAStateCapFallback(t *testing.T) {
	// (a|b)*a(a|b){N}: the minimal DFA needs 2^N states.
	pattern := `(a|b)*a(a|b){18}`
	re := MustCompile(pattern)
	if _, err := re.ToDFA(); err == nil {
		t.Skip("determinization fit in the cap on this build; raise N to exercise the fallback")
	}
	// NFA simulation still answers correctly.
	input := "a" + strings.Repeat("b", 18)
	if !re.MatchNFA(input) {
		t.Error("NFA should accept")
	}
	if re.MatchNFA(strings.Repeat("b", 19)) {
		t.Error("NFA should reject")
	}
	// EnableDFA degrades gracefully.
	if err := re.EnableDFA(); err == nil {
		t.Error("EnableDFA should report the cap")
	}
	if !re.MatchString(input) {
		t.Error("MatchString should fall back to the NFA")
	}
}

func TestNegatedCategory(t *testing.T) {
	re := MustCompile(`\P{Nd}+`)
	if !re.MatchString("abc!") || re.MatchString("a1") {
		t.Error("\\P{Nd} semantics wrong")
	}
}

func TestClassWithEscapesAndRanges(t *testing.T) {
	re := MustCompile(`[\t a-c\-x]+`)
	for _, ok := range []string{"\t", " ", "abc", "-", "x", "a-x c"} {
		if !re.MatchString(ok) {
			t.Errorf("should match %q", ok)
		}
	}
	for _, bad := range []string{"d", "A", ""} {
		if re.MatchString(bad) {
			t.Errorf("should not match %q", bad)
		}
	}
}

func TestNestedSubtraction(t *testing.T) {
	// letters minus (vowels minus 'e'): consonants plus 'e'.
	re := MustCompile(`[a-z-[aeiou-[e]]]+`)
	if !re.MatchString("bcdef") {
		t.Error("e should be allowed back in")
	}
	if re.MatchString("ae") {
		t.Error("a should stay subtracted")
	}
}

func TestUnicodeInput(t *testing.T) {
	re := MustCompile(`\p{L}{2}`)
	if !re.MatchString("ΔΩ") {
		t.Error("Greek letters should match \\p{L}")
	}
	if re.MatchString("Δ") || re.MatchString("ΔΩΔ") {
		t.Error("anchoring with multibyte runes broken")
	}
}

func TestEmptyAlternative(t *testing.T) {
	re := MustCompile(`(a|)(b|)`)
	for _, ok := range []string{"", "a", "b", "ab"} {
		if !re.MatchString(ok) {
			t.Errorf("should match %q", ok)
		}
	}
	if re.MatchString("ba") {
		t.Error("order still matters")
	}
}

func TestQuantifierOnGroupWithAlternation(t *testing.T) {
	re := MustCompile(`(ab|cd){2,3}`)
	cases := map[string]bool{
		"abab": true, "abcd": true, "cdcdcd": true,
		"ab": false, "abababab": false, "abc": false,
	}
	for in, want := range cases {
		if got := re.MatchString(in); got != want {
			t.Errorf("%q: %v, want %v", in, got, want)
		}
	}
}

func TestZeroCount(t *testing.T) {
	re := MustCompile(`a{0}b`)
	if !re.MatchString("b") || re.MatchString("ab") {
		t.Error("a{0} should match nothing")
	}
}
