package xsdregex

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Node is a node of the pattern AST.
type Node interface{ isNode() }

// Concat is a sequence of subexpressions.
type Concat struct{ Items []Node }

// Alt is an alternation (branch1|branch2|...).
type Alt struct{ Alts []Node }

// Repeat applies a quantifier to a subexpression; Max < 0 means unbounded.
type Repeat struct {
	Sub      Node
	Min, Max int
}

// Chars matches any single rune of the set.
type Chars struct{ Set CharSet }

// Empty matches the empty string.
type Empty struct{}

func (Concat) isNode() {}
func (Alt) isNode()    {}
func (Repeat) isNode() {}
func (Chars) isNode()  {}
func (Empty) isNode()  {}

// ParseError reports a syntax error in a pattern.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("xsdregex: %s at offset %d in pattern %q", e.Msg, e.Pos, e.Pattern)
}

type parser struct {
	src []rune
	pos int
	pat string
	// lastEscapeSet carries a multi-character escape's set out of
	// classChar (which signals it with the -2 sentinel).
	lastEscapeSet CharSet
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pattern: p.pat, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() rune {
	if p.pos >= len(p.src) {
		return -1
	}
	return p.src[p.pos]
}

func (p *parser) next() rune {
	r := p.peek()
	if r >= 0 {
		p.pos++
	}
	return r
}

// parsePattern parses a complete XSD regular expression.
func parsePattern(pat string) (Node, error) {
	if !utf8.ValidString(pat) {
		return nil, &ParseError{Pattern: pat, Msg: "pattern is not valid UTF-8"}
	}
	p := &parser{src: []rune(pat), pat: pat}
	n, err := p.regExp()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected %q", string(p.peek()))
	}
	return n, nil
}

// regExp := branch ( '|' branch )*
func (p *parser) regExp() (Node, error) {
	first, err := p.branch()
	if err != nil {
		return nil, err
	}
	if p.peek() != '|' {
		return first, nil
	}
	alts := []Node{first}
	for p.peek() == '|' {
		p.next()
		b, err := p.branch()
		if err != nil {
			return nil, err
		}
		alts = append(alts, b)
	}
	return Alt{Alts: alts}, nil
}

// branch := piece*
func (p *parser) branch() (Node, error) {
	var items []Node
	for {
		r := p.peek()
		if r < 0 || r == '|' || r == ')' {
			break
		}
		piece, err := p.piece()
		if err != nil {
			return nil, err
		}
		items = append(items, piece)
	}
	switch len(items) {
	case 0:
		return Empty{}, nil
	case 1:
		return items[0], nil
	default:
		return Concat{Items: items}, nil
	}
}

// piece := atom quantifier?
func (p *parser) piece() (Node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	switch p.peek() {
	case '?':
		p.next()
		return Repeat{Sub: atom, Min: 0, Max: 1}, nil
	case '*':
		p.next()
		return Repeat{Sub: atom, Min: 0, Max: -1}, nil
	case '+':
		p.next()
		return Repeat{Sub: atom, Min: 1, Max: -1}, nil
	case '{':
		return p.quantity(atom)
	}
	return atom, nil
}

// quantity := '{' n (',' m?)? '}'
func (p *parser) quantity(atom Node) (Node, error) {
	p.next() // '{'
	start := p.pos
	for p.peek() >= '0' && p.peek() <= '9' {
		p.next()
	}
	if p.pos == start {
		return nil, p.errf("expected number in quantifier")
	}
	minV, err := strconv.Atoi(string(p.src[start:p.pos]))
	if err != nil {
		return nil, p.errf("bad quantifier bound: %v", err)
	}
	maxV := minV
	if p.peek() == ',' {
		p.next()
		if p.peek() == '}' {
			maxV = -1
		} else {
			start = p.pos
			for p.peek() >= '0' && p.peek() <= '9' {
				p.next()
			}
			if p.pos == start {
				return nil, p.errf("expected number after ',' in quantifier")
			}
			maxV, err = strconv.Atoi(string(p.src[start:p.pos]))
			if err != nil {
				return nil, p.errf("bad quantifier bound: %v", err)
			}
			if maxV < minV {
				return nil, p.errf("quantifier maximum %d is below minimum %d", maxV, minV)
			}
		}
	}
	if p.peek() != '}' {
		return nil, p.errf("expected '}' in quantifier")
	}
	p.next()
	return Repeat{Sub: atom, Min: minV, Max: maxV}, nil
}

// metaChars are characters that must be escaped to match literally.
const metaChars = `.\?*+{}()[]|`

// atom := NormalChar | charClass | '(' regExp ')'
func (p *parser) atom() (Node, error) {
	r := p.peek()
	switch r {
	case '(':
		p.next()
		sub, err := p.regExp()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, p.errf("missing ')'")
		}
		p.next()
		return sub, nil
	case '[':
		set, err := p.charClassExpr()
		if err != nil {
			return nil, err
		}
		return Chars{Set: set}, nil
	case '.':
		p.next()
		return Chars{Set: setDot}, nil
	case '\\':
		set, lit, err := p.escape(false)
		if err != nil {
			return nil, err
		}
		if lit >= 0 {
			return Chars{Set: SingleRune(lit)}, nil
		}
		return Chars{Set: set}, nil
	case '?', '*', '+', '{', '}', ')':
		return nil, p.errf("unexpected metacharacter %q", string(r))
	default:
		p.next()
		return Chars{Set: SingleRune(r)}, nil
	}
}

// escape parses an escape sequence after '\'. It returns either a literal
// rune (lit >= 0) or a character set. inClass selects the character-class
// context, where a few extra single-char escapes are legal.
func (p *parser) escape(inClass bool) (CharSet, rune, error) {
	p.next() // '\'
	r := p.next()
	switch r {
	case -1:
		return CharSet{}, -1, p.errf("trailing backslash")
	case 'n':
		return CharSet{}, '\n', nil
	case 'r':
		return CharSet{}, '\r', nil
	case 't':
		return CharSet{}, '\t', nil
	case 'd':
		return setD(), -1, nil
	case 'D':
		return setD().Negate(), -1, nil
	case 's':
		return setS, -1, nil
	case 'S':
		return setS.Negate(), -1, nil
	case 'w':
		return setW(), -1, nil
	case 'W':
		return setW().Negate(), -1, nil
	case 'i':
		return setI(), -1, nil
	case 'I':
		return setI().Negate(), -1, nil
	case 'c':
		return setC(), -1, nil
	case 'C':
		return setC().Negate(), -1, nil
	case 'p', 'P':
		if p.peek() != '{' {
			return CharSet{}, -1, p.errf(`expected '{' after \%c`, r)
		}
		p.next()
		start := p.pos
		for p.peek() >= 0 && p.peek() != '}' {
			p.next()
		}
		if p.peek() != '}' {
			return CharSet{}, -1, p.errf(`unterminated \%c{...}`, r)
		}
		name := string(p.src[start:p.pos])
		p.next()
		set, ok := categorySet(name)
		if !ok {
			return CharSet{}, -1, p.errf("unknown character category or block %q", name)
		}
		if r == 'P' {
			set = set.Negate()
		}
		return set, -1, nil
	default:
		if strings.ContainsRune(metaChars, r) || r == '-' || r == '^' {
			return CharSet{}, r, nil
		}
		return CharSet{}, -1, p.errf(`unrecognized escape \%c`, r)
	}
}

// charClassExpr := '[' '^'? charGroup ('-' charClassExpr)? ']'
func (p *parser) charClassExpr() (CharSet, error) {
	p.next() // '['
	negate := false
	if p.peek() == '^' {
		negate = true
		p.next()
	}
	var set CharSet
	first := true
	for {
		r := p.peek()
		if r < 0 {
			return CharSet{}, p.errf("unterminated character class")
		}
		if r == ']' && !first {
			p.next()
			if negate {
				set = set.Negate()
			}
			return set, nil
		}
		if r == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '[' {
			// Character class subtraction: [...-[...]]
			p.next()
			sub, err := p.charClassExpr()
			if err != nil {
				return CharSet{}, err
			}
			if p.peek() != ']' {
				return CharSet{}, p.errf("expected ']' after class subtraction")
			}
			p.next()
			if negate {
				set = set.Negate()
			}
			return set.Subtract(sub), nil
		}
		lo, err := p.classChar()
		if err != nil {
			return CharSet{}, err
		}
		first = false
		if lo == -2 {
			// A multi-char escape contributed a whole set; it cannot
			// form a range.
			set = set.Union(p.lastEscapeSet)
			continue
		}
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != '[' && p.src[p.pos+1] != ']' {
			p.next() // '-'
			hi, err := p.classChar()
			if err != nil {
				return CharSet{}, err
			}
			if hi == -2 {
				return CharSet{}, p.errf("character range bound cannot be a class escape")
			}
			if hi < lo {
				return CharSet{}, p.errf("invalid character range %q-%q", string(lo), string(hi))
			}
			set = set.Union(NewCharSet(RuneRange{lo, hi}))
			continue
		}
		set = set.Union(SingleRune(lo))
	}
}

// classChar parses one character (or escape) inside a character class.
// It returns -2 when the escape produced a set (stored in p.lastEscapeSet).
func (p *parser) classChar() (rune, error) {
	r := p.peek()
	switch r {
	case '\\':
		set, lit, err := p.escape(true)
		if err != nil {
			return 0, err
		}
		if lit >= 0 {
			return lit, nil
		}
		p.lastEscapeSet = set
		return -2, nil
	case '[':
		return 0, p.errf("'[' must be escaped inside a character class")
	default:
		p.next()
		return r, nil
	}
}
