package xsdregex

import "testing"

// FuzzDFA cross-checks the two execution engines: for every compilable
// pattern, the Thompson NFA simulation and the subset-constructed DFA
// must agree on every input. Neither engine may panic, even on garbage
// patterns.
func FuzzDFA(f *testing.F) {
	seeds := [][2]string{
		{`\d{3}-[A-Z]{2}`, `123-AB`},
		{`\d{3}-[A-Z]{2}`, `12-AB`},
		{`(a|b)*c?`, `ababc`},
		{`[\i-[:]][\c-[:]]*`, `name`},
		{`\p{L}+`, `héllo`},
		{`[^abc]+`, `xyz`},
		{`a{2,4}`, `aaa`},
		{`.*`, ``},
		{`((`, `x`},
		{`[z-a]`, `q`},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pattern, input string) {
		re, err := Compile(pattern)
		if err != nil {
			return // rejected patterns just must not panic
		}
		nfa := re.MatchNFA(input)
		if err := re.EnableDFA(); err != nil {
			return // DFA budget exceeded; NFA-only is fine
		}
		if dfa := re.MatchString(input); dfa != nfa {
			t.Fatalf("engines disagree on %q vs %q: NFA=%v DFA=%v", pattern, input, nfa, dfa)
		}
	})
}
