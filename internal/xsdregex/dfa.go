package xsdregex

import "sort"

// Deterministic automaton built with the Aho–Sethi–Ullman followpos
// construction ("Compilers — Principles, Techniques and Tools", the
// algorithm the paper's §6 uses in its preprocessor generator): the AST is
// augmented with a unique end marker, nullable/firstpos/lastpos/followpos
// are computed over positions (leaf character sets), and DFA states are
// sets of positions.

// DFA is a deterministic automaton over rune ranges.
type DFA struct {
	// trans[s] are the outgoing transitions of state s, sorted by Lo and
	// non-overlapping, so lookup is a binary search.
	trans  [][]dfaEdge
	accept []bool
	start  int
	// incomplete is set when subset construction hit maxDFAStates; such
	// an automaton must not be used for matching.
	incomplete bool
}

type dfaEdge struct {
	lo, hi rune
	to     int
}

// NumStates returns the number of DFA states (for tests and benches).
func (d *DFA) NumStates() int { return len(d.trans) }

// Match reports whether the DFA accepts the whole input.
func (d *DFA) Match(input string) bool {
	s := d.start
	for _, r := range input {
		edges := d.trans[s]
		i := sort.Search(len(edges), func(i int) bool { return edges[i].hi >= r })
		if i >= len(edges) || edges[i].lo > r {
			return false
		}
		s = edges[i].to
	}
	return d.accept[s]
}

// position is a leaf occurrence in the followpos construction.
type position struct {
	set CharSet
	end bool // the synthetic end marker
}

// posInfo carries the nullable/firstpos/lastpos attributes up the AST.
type posInfo struct {
	nullable bool
	first    []int
	last     []int
}

type followBuilder struct {
	positions []position
	follow    [][]int
}

func (fb *followBuilder) leaf(set CharSet, end bool) posInfo {
	id := len(fb.positions)
	fb.positions = append(fb.positions, position{set: set, end: end})
	fb.follow = append(fb.follow, nil)
	return posInfo{nullable: false, first: []int{id}, last: []int{id}}
}

func (fb *followBuilder) addFollow(from int, to []int) {
	fb.follow[from] = append(fb.follow[from], to...)
}

// expandRepeat rewrites a bounded Repeat into Concat/Alt/star form so the
// followpos construction only ever sees star.
func expandRepeat(x Repeat) Node {
	min, max := x.Min, x.Max
	if min > repeatExpandLimit {
		min = repeatExpandLimit
	}
	if max > repeatExpandLimit {
		max = repeatExpandLimit
	}
	var items []Node
	for i := 0; i < min; i++ {
		items = append(items, x.Sub)
	}
	if max < 0 {
		items = append(items, star{Sub: x.Sub})
	} else {
		for i := min; i < max; i++ {
			items = append(items, Alt{Alts: []Node{x.Sub, Empty{}}})
		}
	}
	switch len(items) {
	case 0:
		return Empty{}
	case 1:
		return items[0]
	default:
		return Concat{Items: items}
	}
}

// star is the internal Kleene-star node produced by expandRepeat.
type star struct{ Sub Node }

func (star) isNode() {}

// walkStar handles the Kleene star: every last position loops back to
// every first position.
func (fb *followBuilder) walkStar(x star) posInfo {
	inner := fb.walkAll(x.Sub)
	for _, p := range inner.last {
		fb.addFollow(p, inner.first)
	}
	return posInfo{nullable: true, first: inner.first, last: inner.last}
}

// compileDFA builds the deterministic automaton for the AST.
func compileDFA(root Node) *DFA {
	fb := &followBuilder{}
	// Augment: root · #end.
	info := fb.walkTop(root)
	endInfo := fb.leaf(CharSet{}, true)
	fb.positions[len(fb.positions)-1].end = true
	for _, p := range info.last {
		fb.addFollow(p, endInfo.first)
	}
	startSet := info.first
	if info.nullable {
		startSet = append(append([]int{}, startSet...), endInfo.first...)
	}
	return subsetConstruct(fb, startSet)
}

// walkTop dispatches star nodes (walk cannot see them since they only come
// from expandRepeat, which walkTop applies first).
func (fb *followBuilder) walkTop(n Node) posInfo {
	return fb.walkAll(n)
}

func (fb *followBuilder) walkAll(n Node) posInfo {
	switch x := n.(type) {
	case star:
		return fb.walkStar(x)
	case Repeat:
		return fb.walkAll(expandRepeat(x))
	case Concat:
		cur := fb.walkAll(x.Items[0])
		for _, item := range x.Items[1:] {
			next := fb.walkAll(item)
			for _, p := range cur.last {
				fb.addFollow(p, next.first)
			}
			merged := posInfo{nullable: cur.nullable && next.nullable}
			if cur.nullable {
				merged.first = append(append([]int{}, cur.first...), next.first...)
			} else {
				merged.first = cur.first
			}
			if next.nullable {
				merged.last = append(append([]int{}, next.last...), cur.last...)
			} else {
				merged.last = next.last
			}
			cur = merged
		}
		return cur
	case Alt:
		out := posInfo{}
		for _, alt := range x.Alts {
			ai := fb.walkAll(alt)
			out.nullable = out.nullable || ai.nullable
			out.first = append(out.first, ai.first...)
			out.last = append(out.last, ai.last...)
		}
		return out
	case Empty:
		return posInfo{nullable: true}
	case Chars:
		return fb.leaf(x.Set, false)
	default:
		panic("xsdregex: unknown AST node")
	}
}

// maxDFAStates caps subset construction against exponential blowup; when
// exceeded, Regexp falls back to NFA simulation.
const maxDFAStates = 1 << 14

// subsetConstruct runs the subset construction over position sets.
func subsetConstruct(fb *followBuilder, start []int) *DFA {
	start = dedupSorted(start)
	type stateKey string
	keyOf := func(set []int) stateKey {
		b := make([]byte, 0, len(set)*3)
		for _, p := range set {
			b = append(b, byte(p), byte(p>>8), byte(p>>16))
		}
		return stateKey(b)
	}
	d := &DFA{}
	index := map[stateKey]int{}
	var sets [][]int
	addState := func(set []int) int {
		k := keyOf(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.trans = append(d.trans, nil)
		acc := false
		for _, p := range set {
			if fb.positions[p].end {
				acc = true
			}
		}
		d.accept = append(d.accept, acc)
		return id
	}
	d.start = addState(start)
	for si := 0; si < len(sets); si++ {
		if si >= maxDFAStates {
			d.incomplete = true
			break
		}
		set := sets[si]
		// Partition the alphabet into segments on which the position
		// membership is uniform.
		var cuts []rune
		for _, p := range set {
			for _, rg := range fb.positions[p].set.Ranges {
				cuts = append(cuts, rg.Lo, rg.Hi+1)
			}
		}
		if len(cuts) == 0 {
			continue
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
		cuts = dedupRunes(cuts)
		for ci := 0; ci+1 <= len(cuts); ci++ {
			lo := cuts[ci]
			var hi rune
			if ci+1 < len(cuts) {
				hi = cuts[ci+1] - 1
			} else {
				hi = maxRune
			}
			if lo > maxRune {
				break
			}
			// Compute the move on the representative rune lo.
			var target []int
			for _, p := range set {
				if fb.positions[p].set.Contains(lo) {
					target = append(target, fb.follow[p]...)
				}
			}
			if len(target) == 0 {
				continue
			}
			target = dedupSorted(target)
			to := addState(target)
			d.trans[si] = append(d.trans[si], dfaEdge{lo: lo, hi: hi, to: to})
		}
		// Merge adjacent edges to the same target.
		d.trans[si] = mergeEdges(d.trans[si])
	}
	return d
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupRunes(xs []rune) []rune {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func mergeEdges(edges []dfaEdge) []dfaEdge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		last := &out[len(out)-1]
		if e.to == last.to && e.lo == last.hi+1 {
			last.hi = e.hi
			continue
		}
		out = append(out, e)
	}
	return out
}
