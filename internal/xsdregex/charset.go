package xsdregex

import (
	"sort"
	"unicode"
)

// maxRune is the upper bound of the XML character space.
const maxRune = 0x10FFFF

// RuneRange is an inclusive range of runes.
type RuneRange struct {
	Lo, Hi rune
}

// CharSet is a set of runes, held as sorted, non-overlapping,
// non-adjacent inclusive ranges.
type CharSet struct {
	Ranges []RuneRange
}

// Contains reports whether the set contains r.
func (s CharSet) Contains(r rune) bool {
	i := sort.Search(len(s.Ranges), func(i int) bool { return s.Ranges[i].Hi >= r })
	return i < len(s.Ranges) && s.Ranges[i].Lo <= r
}

// IsEmpty reports whether the set is empty.
func (s CharSet) IsEmpty() bool { return len(s.Ranges) == 0 }

// normalize sorts and merges ranges.
func normalize(ranges []RuneRange) []RuneRange {
	if len(ranges) == 0 {
		return nil
	}
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Lo != ranges[j].Lo {
			return ranges[i].Lo < ranges[j].Lo
		}
		return ranges[i].Hi < ranges[j].Hi
	})
	out := ranges[:1]
	for _, r := range ranges[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// NewCharSet builds a set from arbitrary ranges.
func NewCharSet(ranges ...RuneRange) CharSet {
	cp := append([]RuneRange(nil), ranges...)
	return CharSet{Ranges: normalize(cp)}
}

// SingleRune returns the set containing exactly r.
func SingleRune(r rune) CharSet { return CharSet{Ranges: []RuneRange{{r, r}}} }

// Union returns s ∪ t.
func (s CharSet) Union(t CharSet) CharSet {
	return NewCharSet(append(append([]RuneRange(nil), s.Ranges...), t.Ranges...)...)
}

// Negate returns the complement of s within [0, maxRune].
func (s CharSet) Negate() CharSet {
	var out []RuneRange
	var next rune
	for _, r := range s.Ranges {
		if r.Lo > next {
			out = append(out, RuneRange{next, r.Lo - 1})
		}
		next = r.Hi + 1
	}
	if next <= maxRune {
		out = append(out, RuneRange{next, maxRune})
	}
	return CharSet{Ranges: out}
}

// Subtract returns s \ t (the character-class subtraction operator).
func (s CharSet) Subtract(t CharSet) CharSet {
	return s.Intersect(t.Negate())
}

// Intersect returns s ∩ t.
func (s CharSet) Intersect(t CharSet) CharSet {
	var out []RuneRange
	i, j := 0, 0
	for i < len(s.Ranges) && j < len(t.Ranges) {
		a, b := s.Ranges[i], t.Ranges[j]
		lo := max(a.Lo, b.Lo)
		hi := min(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, RuneRange{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return CharSet{Ranges: out}
}

// Count returns the number of runes in the set.
func (s CharSet) Count() int64 {
	var n int64
	for _, r := range s.Ranges {
		n += int64(r.Hi) - int64(r.Lo) + 1
	}
	return n
}

// fromUnicodeTable converts a unicode.RangeTable to a CharSet.
func fromUnicodeTable(t *unicode.RangeTable) CharSet {
	var ranges []RuneRange
	for _, r := range t.R16 {
		if r.Stride == 1 {
			ranges = append(ranges, RuneRange{rune(r.Lo), rune(r.Hi)})
			continue
		}
		for c := rune(r.Lo); c <= rune(r.Hi); c += rune(r.Stride) {
			ranges = append(ranges, RuneRange{c, c})
		}
	}
	for _, r := range t.R32 {
		if r.Stride == 1 {
			ranges = append(ranges, RuneRange{rune(r.Lo), rune(r.Hi)})
			continue
		}
		for c := rune(r.Lo); c <= rune(r.Hi); c += rune(r.Stride) {
			ranges = append(ranges, RuneRange{c, c})
		}
	}
	return NewCharSet(ranges...)
}

// Named character classes of the dialect.

var (
	setDot = NewCharSet(RuneRange{0, maxRune}).Subtract(NewCharSet(RuneRange{'\n', '\n'}, RuneRange{'\r', '\r'}))
	setS   = NewCharSet(RuneRange{' ', ' '}, RuneRange{'\t', '\t'}, RuneRange{'\n', '\n'}, RuneRange{'\r', '\r'})
)

// setD is \d: Unicode decimal digits (category Nd).
func setD() CharSet { return fromUnicodeTable(unicode.Nd) }

// setW is \w: all characters except those in categories P, Z and C.
func setW() CharSet {
	punct := fromUnicodeTable(unicode.P)
	sep := fromUnicodeTable(unicode.Z)
	other := fromUnicodeTable(unicode.C)
	return NewCharSet(RuneRange{0, maxRune}).Subtract(punct.Union(sep).Union(other))
}

// setI is \i: XML NameStartChar (including ':').
func setI() CharSet {
	return NewCharSet(
		RuneRange{':', ':'}, RuneRange{'A', 'Z'}, RuneRange{'_', '_'}, RuneRange{'a', 'z'},
		RuneRange{0xC0, 0xD6}, RuneRange{0xD8, 0xF6}, RuneRange{0xF8, 0x2FF},
		RuneRange{0x370, 0x37D}, RuneRange{0x37F, 0x1FFF}, RuneRange{0x200C, 0x200D},
		RuneRange{0x2070, 0x218F}, RuneRange{0x2C00, 0x2FEF}, RuneRange{0x3001, 0xD7FF},
		RuneRange{0xF900, 0xFDCF}, RuneRange{0xFDF0, 0xFFFD}, RuneRange{0x10000, 0xEFFFF},
	)
}

// setC is \c: XML NameChar.
func setC() CharSet {
	return setI().Union(NewCharSet(
		RuneRange{'-', '-'}, RuneRange{'.', '.'}, RuneRange{'0', '9'},
		RuneRange{0xB7, 0xB7}, RuneRange{0x300, 0x36F}, RuneRange{0x203F, 0x2040},
	))
}

// unicodeBlocks maps the block names accepted in \p{IsXxx} escapes to their
// ranges. This covers the blocks that appear in practice; unknown block
// names are a compile error.
var unicodeBlocks = map[string]RuneRange{
	"BasicLatin":                {0x0000, 0x007F},
	"Latin-1Supplement":         {0x0080, 0x00FF},
	"LatinExtended-A":           {0x0100, 0x017F},
	"LatinExtended-B":           {0x0180, 0x024F},
	"IPAExtensions":             {0x0250, 0x02AF},
	"SpacingModifierLetters":    {0x02B0, 0x02FF},
	"CombiningDiacriticalMarks": {0x0300, 0x036F},
	"Greek":                     {0x0370, 0x03FF},
	"Cyrillic":                  {0x0400, 0x04FF},
	"Armenian":                  {0x0530, 0x058F},
	"Hebrew":                    {0x0590, 0x05FF},
	"Arabic":                    {0x0600, 0x06FF},
	"Devanagari":                {0x0900, 0x097F},
	"Thai":                      {0x0E00, 0x0E7F},
	"Hiragana":                  {0x3040, 0x309F},
	"Katakana":                  {0x30A0, 0x30FF},
	"CJKUnifiedIdeographs":      {0x4E00, 0x9FFF},
	"HangulSyllables":           {0xAC00, 0xD7A3},
	"PrivateUse":                {0xE000, 0xF8FF},
	"GeneralPunctuation":        {0x2000, 0x206F},
	"CurrencySymbols":           {0x20A0, 0x20CF},
	"Arrows":                    {0x2190, 0x21FF},
	"MathematicalOperators":     {0x2200, 0x22FF},
	"BoxDrawing":                {0x2500, 0x257F},
	"GeometricShapes":           {0x25A0, 0x25FF},
	"MiscellaneousSymbols":      {0x2600, 0x26FF},
}

// categorySet resolves a \p{Name} category or block escape.
func categorySet(name string) (CharSet, bool) {
	if len(name) > 2 && name[:2] == "Is" {
		if rg, ok := unicodeBlocks[name[2:]]; ok {
			return NewCharSet(rg), true
		}
		if tbl, ok := unicode.Scripts[name[2:]]; ok {
			return fromUnicodeTable(tbl), true
		}
		return CharSet{}, false
	}
	if tbl, ok := unicode.Categories[name]; ok {
		return fromUnicodeTable(tbl), true
	}
	// One-letter groupings (L, M, N, P, S, Z, C).
	switch name {
	case "L":
		return fromUnicodeTable(unicode.L), true
	case "M":
		return fromUnicodeTable(unicode.M), true
	case "N":
		return fromUnicodeTable(unicode.N), true
	case "P":
		return fromUnicodeTable(unicode.P), true
	case "S":
		return fromUnicodeTable(unicode.S), true
	case "Z":
		return fromUnicodeTable(unicode.Z), true
	case "C":
		return fromUnicodeTable(unicode.C), true
	}
	return CharSet{}, false
}
