package xsdregex

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Regexp is a compiled XML Schema regular expression. The zero value is not
// usable; obtain one from Compile or MustCompile. A compiled Regexp is
// safe for concurrent use: matching allocates per-call scratch only, and
// the lazy DFA upgrade is built under a sync.Once and published
// atomically.
type Regexp struct {
	pattern string
	ast     Node
	nfa     *nfa
	dfaOnce sync.Once
	dfa     atomic.Pointer[DFA] // built lazily by ToDFA / EnableDFA
	dfaErr  error
}

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	ast, err := parsePattern(pattern)
	if err != nil {
		return nil, err
	}
	return &Regexp{pattern: pattern, ast: ast, nfa: compileNFA(ast)}, nil
}

// MustCompile is Compile for patterns known to be valid; it panics on
// error.
func MustCompile(pattern string) *Regexp {
	r, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return r
}

// String returns the source pattern.
func (r *Regexp) String() string { return r.pattern }

// MatchString reports whether the pattern matches the entire input (XSD
// patterns are implicitly anchored at both ends).
func (r *Regexp) MatchString(s string) bool {
	if d := r.dfa.Load(); d != nil {
		return d.Match(s)
	}
	return r.nfa.match(s)
}

// ErrTooComplex is returned by ToDFA when the deterministic automaton
// would exceed the state limit.
var ErrTooComplex = errors.New("xsdregex: pattern too complex for DFA construction")

// ToDFA builds (or returns the cached) deterministic automaton using the
// Aho–Sethi–Ullman followpos construction. The build runs at most once
// per Regexp; concurrent callers share the result.
func (r *Regexp) ToDFA() (*DFA, error) {
	r.dfaOnce.Do(func() {
		d := compileDFA(r.ast)
		if d.incomplete {
			r.dfaErr = ErrTooComplex
			return
		}
		r.dfa.Store(d)
	})
	return r.dfa.Load(), r.dfaErr
}

// EnableDFA switches MatchString to the deterministic automaton. It is a
// no-op (returning the error) when the pattern is too complex.
func (r *Regexp) EnableDFA() error {
	_, err := r.ToDFA()
	return err
}

// MatchNFA matches using NFA simulation regardless of EnableDFA — exposed
// for the ablation benchmarks.
func (r *Regexp) MatchNFA(s string) bool { return r.nfa.match(s) }
