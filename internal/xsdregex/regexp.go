package xsdregex

import "errors"

// Regexp is a compiled XML Schema regular expression. The zero value is not
// usable; obtain one from Compile or MustCompile.
type Regexp struct {
	pattern string
	ast     Node
	nfa     *nfa
	dfa     *DFA // built lazily by ToDFA / EnableDFA
}

// Compile parses and compiles a pattern.
func Compile(pattern string) (*Regexp, error) {
	ast, err := parsePattern(pattern)
	if err != nil {
		return nil, err
	}
	return &Regexp{pattern: pattern, ast: ast, nfa: compileNFA(ast)}, nil
}

// MustCompile is Compile for patterns known to be valid; it panics on
// error.
func MustCompile(pattern string) *Regexp {
	r, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return r
}

// String returns the source pattern.
func (r *Regexp) String() string { return r.pattern }

// MatchString reports whether the pattern matches the entire input (XSD
// patterns are implicitly anchored at both ends).
func (r *Regexp) MatchString(s string) bool {
	if r.dfa != nil {
		return r.dfa.Match(s)
	}
	return r.nfa.match(s)
}

// ErrTooComplex is returned by ToDFA when the deterministic automaton
// would exceed the state limit.
var ErrTooComplex = errors.New("xsdregex: pattern too complex for DFA construction")

// ToDFA builds (or returns the cached) deterministic automaton using the
// Aho–Sethi–Ullman followpos construction.
func (r *Regexp) ToDFA() (*DFA, error) {
	if r.dfa == nil {
		d := compileDFA(r.ast)
		if d.incomplete {
			return nil, ErrTooComplex
		}
		r.dfa = d
	}
	return r.dfa, nil
}

// EnableDFA switches MatchString to the deterministic automaton. It is a
// no-op (returning the error) when the pattern is too complex.
func (r *Regexp) EnableDFA() error {
	_, err := r.ToDFA()
	return err
}

// MatchNFA matches using NFA simulation regardless of EnableDFA — exposed
// for the ablation benchmarks.
func (r *Regexp) MatchNFA(s string) bool { return r.nfa.match(s) }
