// Package dtd parses Document Type Definitions (the internal subset) and
// validates DOM documents against them. DTDs are the weaker schema
// language the authors' previous system [14] was built on; the paper's §1
// positions XML Schema as their replacement, and the repository keeps the
// DTD path as the comparison baseline.
//
// # Role in the pipeline
//
// dtd runs beside the XML Schema pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml) as the historical
// baseline: it shares package contentmodel's matchers for children
// content models and package dom's trees, and experiment E9 quantifies
// the expressiveness it lacks relative to package xsd.
//
// # Concurrency
//
// A parsed DTD is immutable apart from the per-declaration compiled
// content-model matcher, which is built under a sync.Once — so one DTD
// may validate documents from multiple goroutines concurrently. Each
// Validate call keeps its run state private; as everywhere in this
// repository, documents must not be mutated during validation.
package dtd
