package dtd

import (
	"fmt"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xmlparser"
)

// Violation is one DTD validity error.
type Violation struct {
	Path string
	Msg  string
}

// Error formats the violation.
func (v Violation) Error() string { return v.Path + ": " + v.Msg }

// Result collects violations.
type Result struct {
	Violations []Violation
}

// OK reports validity.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Err summarizes violations as an error (nil when valid).
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		msgs = append(msgs, v.Error())
	}
	return fmt.Errorf("document is invalid against its DTD:\n  %s", strings.Join(msgs, "\n  "))
}

// Validate checks a DOM document against the DTD, including the root
// element constraint, content models, attribute types and defaults, and
// ID/IDREF integrity.
func Validate(d *DTD, doc *dom.Document) *Result {
	v := &dtdRun{dtd: d, ids: map[string]bool{}}
	root := doc.DocumentElement()
	if root == nil {
		v.violate("/", "document has no root element")
		return &v.res
	}
	if d.RootName != "" && root.TagName() != d.RootName {
		v.violate("/"+root.TagName(), fmt.Sprintf("root element is %q, DOCTYPE requires %q", root.TagName(), d.RootName))
	}
	v.element(root, "/"+root.TagName())
	for _, ref := range v.idrefs {
		if !v.ids[ref.id] {
			v.violate(ref.path, fmt.Sprintf("IDREF %q does not match any ID", ref.id))
		}
	}
	return &v.res
}

// ValidateDocument parses the document's own DOCTYPE and validates
// against it.
func ValidateDocument(doc *dom.Document) (*Result, error) {
	if doc.Doctype == nil {
		return nil, fmt.Errorf("dtd: document has no DOCTYPE")
	}
	d, err := Parse(doc.Doctype.Name, doc.Doctype.InternalSubset)
	if err != nil {
		return nil, err
	}
	return Validate(d, doc), nil
}

type dtdRun struct {
	dtd    *DTD
	res    Result
	ids    map[string]bool
	idrefs []struct{ id, path string }
}

func (v *dtdRun) violate(path, msg string) {
	if len(v.res.Violations) < 100 {
		v.res.Violations = append(v.res.Violations, Violation{Path: path, Msg: msg})
	}
}

func (v *dtdRun) element(el *dom.Element, path string) {
	decl, ok := v.dtd.Elements[el.TagName()]
	if !ok {
		v.violate(path, fmt.Sprintf("element %q is not declared", el.TagName()))
		return
	}
	v.attributes(el, path)
	switch decl.Kind {
	case ContentEmpty:
		if el.HasChildNodes() {
			v.violate(path, "declared EMPTY but has content")
		}
	case ContentAny:
		for _, c := range el.ChildElements() {
			v.element(c, path+"/"+c.TagName())
		}
	case ContentMixed:
		allowed := map[string]bool{}
		for _, n := range decl.MixedNames {
			allowed[n] = true
		}
		for _, c := range el.ChildElements() {
			if !allowed[c.TagName()] {
				v.violate(path, fmt.Sprintf("element %q is not allowed in this mixed content", c.TagName()))
				continue
			}
			v.element(c, path+"/"+c.TagName())
		}
	case ContentChildren:
		var symbols []contentmodel.Symbol
		var kids []*dom.Element
		for _, c := range el.ChildNodes() {
			switch x := c.(type) {
			case *dom.Element:
				symbols = append(symbols, contentmodel.Symbol{Local: x.TagName()})
				kids = append(kids, x)
			case *dom.Text:
				if strings.TrimSpace(x.Data) != "" {
					v.violate(path, "character data is not allowed in element content")
				}
			case *dom.CDATASection:
				v.violate(path, "character data is not allowed in element content")
			}
		}
		if _, err := decl.Matcher().Match(symbols); err != nil {
			v.violate(path, err.Error())
		}
		for _, c := range kids {
			v.element(c, path+"/"+c.TagName())
		}
	}
}

func (v *dtdRun) attributes(el *dom.Element, path string) {
	defs := v.dtd.Attlists[el.TagName()]
	byName := map[string]*AttDef{}
	for _, def := range defs {
		byName[def.Name] = def
	}
	for _, a := range el.Attributes() {
		if a.Name().Space == xmlparser.XMLNSNamespace {
			continue
		}
		def, ok := byName[a.NodeName()]
		if !ok {
			v.violate(path, fmt.Sprintf("attribute %q is not declared", a.NodeName()))
			continue
		}
		v.attrValue(def, a.Value(), path+"/@"+a.NodeName())
	}
	for _, def := range defs {
		has := el.HasAttribute(def.Name)
		switch def.Default {
		case DefaultRequired:
			if !has {
				v.violate(path, fmt.Sprintf("required attribute %q is missing", def.Name))
			}
		case DefaultFixed:
			if has && el.GetAttribute(def.Name) != def.Value {
				v.violate(path, fmt.Sprintf("attribute %q must have the fixed value %q", def.Name, def.Value))
			}
		}
	}
}

func (v *dtdRun) attrValue(def *AttDef, value, path string) {
	switch def.Type {
	case AttCDATA:
		// anything goes
	case AttID:
		if !xmlparser.IsName(value) {
			v.violate(path, fmt.Sprintf("ID %q is not a Name", value))
			return
		}
		if v.ids[value] {
			v.violate(path, fmt.Sprintf("duplicate ID %q", value))
		}
		v.ids[value] = true
	case AttIDREF:
		v.idrefs = append(v.idrefs, struct{ id, path string }{value, path})
	case AttIDREFS:
		for _, ref := range strings.Fields(value) {
			v.idrefs = append(v.idrefs, struct{ id, path string }{ref, path})
		}
	case AttNMTOKEN:
		if !xmlparser.IsNmtoken(value) {
			v.violate(path, fmt.Sprintf("%q is not an NMTOKEN", value))
		}
	case AttNMTOKENS:
		fields := strings.Fields(value)
		if len(fields) == 0 {
			v.violate(path, "NMTOKENS must contain at least one token")
		}
		for _, f := range fields {
			if !xmlparser.IsNmtoken(f) {
				v.violate(path, fmt.Sprintf("%q is not an NMTOKEN", f))
			}
		}
	case AttENTITY:
		if _, ok := v.dtd.Entities[value]; !ok {
			v.violate(path, fmt.Sprintf("entity %q is not declared", value))
		}
	case AttENTITIES:
		for _, f := range strings.Fields(value) {
			if _, ok := v.dtd.Entities[f]; !ok {
				v.violate(path, fmt.Sprintf("entity %q is not declared", f))
			}
		}
	case AttEnum:
		for _, e := range def.Enum {
			if value == e {
				return
			}
		}
		v.violate(path, fmt.Sprintf("%q is not one of the enumerated values %v", value, def.Enum))
	case AttNotation:
		if !v.dtd.Notations[value] {
			v.violate(path, fmt.Sprintf("notation %q is not declared", value))
		}
	}
}
