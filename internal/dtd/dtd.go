package dtd

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/contentmodel"
	"repro/internal/xmlparser"
)

// ContentKind classifies an element type's declared content.
type ContentKind int

// Content kinds.
const (
	// ContentEmpty is EMPTY.
	ContentEmpty ContentKind = iota
	// ContentAny is ANY.
	ContentAny
	// ContentMixed is (#PCDATA | a | b)*.
	ContentMixed
	// ContentChildren is a children content model expression.
	ContentChildren
)

// ElementDecl is an <!ELEMENT> declaration.
type ElementDecl struct {
	Name string
	Kind ContentKind
	// MixedNames are the element names admitted in mixed content.
	MixedNames []string
	// Model is the children content model (Kind == ContentChildren).
	Model *contentmodel.Particle

	// matcher caches the compiled content-model automaton; matcherOnce
	// makes the lazy build safe under concurrent Matcher calls.
	matcherOnce sync.Once
	matcher     contentmodel.Matcher
}

// Matcher returns (building on first use) the compiled matcher for a
// children content model. The build runs exactly once per declaration,
// so a parsed DTD may be shared across goroutines.
func (d *ElementDecl) Matcher() contentmodel.Matcher {
	d.matcherOnce.Do(func() {
		d.matcher = contentmodel.Compile(d.Model)
	})
	return d.matcher
}

// AttType is a DTD attribute type.
type AttType int

// Attribute types.
const (
	AttCDATA AttType = iota
	AttID
	AttIDREF
	AttIDREFS
	AttENTITY
	AttENTITIES
	AttNMTOKEN
	AttNMTOKENS
	AttEnum
	AttNotation
)

// DefaultKind is an attribute default constraint.
type DefaultKind int

// Default kinds.
const (
	DefaultImplied DefaultKind = iota
	DefaultRequired
	DefaultFixed
	DefaultValue
)

// AttDef is one attribute definition of an <!ATTLIST>.
type AttDef struct {
	Name    string
	Type    AttType
	Enum    []string
	Default DefaultKind
	Value   string // default or fixed value
}

// DTD is a parsed document type definition.
type DTD struct {
	// RootName is the doctype name (the required root element type).
	RootName string
	Elements map[string]*ElementDecl
	// Attlists maps element name -> attribute definitions.
	Attlists map[string][]*AttDef
	// Entities are the declared internal general entities.
	Entities map[string]string
	// Notations records declared notation names.
	Notations map[string]bool
}

// Parse parses the raw internal-subset text of a DOCTYPE declaration.
func Parse(rootName, subset string) (*DTD, error) {
	d := &DTD{
		RootName:  rootName,
		Elements:  map[string]*ElementDecl{},
		Attlists:  map[string][]*AttDef{},
		Entities:  map[string]string{},
		Notations: map[string]bool{},
	}
	p := &parser{src: subset}
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return d, nil
		}
		switch {
		case p.consume("<!ELEMENT"):
			if err := p.elementDecl(d); err != nil {
				return nil, err
			}
		case p.consume("<!ATTLIST"):
			if err := p.attlistDecl(d); err != nil {
				return nil, err
			}
		case p.consume("<!ENTITY"):
			if err := p.entityDecl(d); err != nil {
				return nil, err
			}
		case p.consume("<!NOTATION"):
			if err := p.notationDecl(d); err != nil {
				return nil, err
			}
		case p.consume("<?"):
			if _, err := p.until("?>"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected content in internal subset")
		}
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("dtd: %s (at offset %d)", fmt.Sprintf(format, args...), p.pos)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

func (p *parser) skipSpaceAndComments() {
	for {
		p.skipSpace()
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 3
			continue
		}
		return
	}
}

func (p *parser) consume(tok string) bool {
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) until(term string) (string, error) {
	i := strings.Index(p.src[p.pos:], term)
	if i < 0 {
		return "", p.errf("missing %q", term)
	}
	out := p.src[p.pos : p.pos+i]
	p.pos += i + len(term)
	return out, nil
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if !xmlparser.IsNameChar(r) {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

// elementDecl parses the rest of <!ELEMENT name contentspec>.
func (p *parser) elementDecl(d *DTD) error {
	name, err := p.name()
	if err != nil {
		return err
	}
	if _, dup := d.Elements[name]; dup {
		return p.errf("element %q declared twice", name)
	}
	decl := &ElementDecl{Name: name}
	p.skipSpace()
	switch {
	case p.consume("EMPTY"):
		decl.Kind = ContentEmpty
	case p.consume("ANY"):
		decl.Kind = ContentAny
	case strings.HasPrefix(p.src[p.pos:], "(") && p.peekMixed():
		if err := p.mixed(decl); err != nil {
			return err
		}
	case strings.HasPrefix(p.src[p.pos:], "("):
		model, err := p.cp()
		if err != nil {
			return err
		}
		decl.Kind = ContentChildren
		decl.Model = model
	default:
		return p.errf("bad content spec for element %q", name)
	}
	p.skipSpace()
	if !p.consume(">") {
		return p.errf("missing '>' after element declaration %q", name)
	}
	d.Elements[name] = decl
	return nil
}

// peekMixed looks ahead for "(#PCDATA".
func (p *parser) peekMixed() bool {
	rest := p.src[p.pos:]
	rest = strings.TrimPrefix(rest, "(")
	rest = strings.TrimLeft(rest, " \t\r\n")
	return strings.HasPrefix(rest, "#PCDATA")
}

// mixed parses (#PCDATA) or (#PCDATA | a | b)*.
func (p *parser) mixed(decl *ElementDecl) error {
	p.consume("(")
	p.skipSpace()
	p.consume("#PCDATA")
	decl.Kind = ContentMixed
	for {
		p.skipSpace()
		if p.consume(")") {
			p.consume("*") // optional for bare (#PCDATA)
			return nil
		}
		if !p.consume("|") {
			return p.errf("expected '|' or ')' in mixed content")
		}
		n, err := p.name()
		if err != nil {
			return err
		}
		decl.MixedNames = append(decl.MixedNames, n)
	}
}

// cp parses a content particle: name or (choice|seq) with occurrence.
func (p *parser) cp() (*contentmodel.Particle, error) {
	p.skipSpace()
	var particle *contentmodel.Particle
	if p.consume("(") {
		var children []*contentmodel.Particle
		first, err := p.cp()
		if err != nil {
			return nil, err
		}
		children = append(children, first)
		p.skipSpace()
		sep := byte(0)
		for {
			p.skipSpace()
			if p.consume(")") {
				break
			}
			var this byte
			switch {
			case p.consume("|"):
				this = '|'
			case p.consume(","):
				this = ','
			default:
				return nil, p.errf("expected '|', ',' or ')'")
			}
			if sep == 0 {
				sep = this
			} else if sep != this {
				return nil, p.errf("cannot mix ',' and '|' in one group")
			}
			c, err := p.cp()
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		}
		kind := contentmodel.Sequence
		if sep == '|' {
			kind = contentmodel.Choice
		}
		particle = &contentmodel.Particle{Min: 1, Max: 1, Group: &contentmodel.Group{Kind: kind, Children: children}}
	} else {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		particle = contentmodel.NewElementLeaf(1, 1, contentmodel.Symbol{Local: n}, n)
	}
	switch {
	case p.consume("?"):
		particle.Min, particle.Max = 0, 1
	case p.consume("*"):
		particle.Min, particle.Max = 0, contentmodel.Unbounded
	case p.consume("+"):
		particle.Min, particle.Max = 1, contentmodel.Unbounded
	}
	return particle, nil
}

// attlistDecl parses the rest of <!ATTLIST name (attdef)* >.
func (p *parser) attlistDecl(d *DTD) error {
	elem, err := p.name()
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.consume(">") {
			return nil
		}
		attName, err := p.name()
		if err != nil {
			return err
		}
		def := &AttDef{Name: attName}
		p.skipSpace()
		switch {
		case p.consume("CDATA"):
			def.Type = AttCDATA
		case p.consume("IDREFS"):
			def.Type = AttIDREFS
		case p.consume("IDREF"):
			def.Type = AttIDREF
		case p.consume("ID"):
			def.Type = AttID
		case p.consume("ENTITIES"):
			def.Type = AttENTITIES
		case p.consume("ENTITY"):
			def.Type = AttENTITY
		case p.consume("NMTOKENS"):
			def.Type = AttNMTOKENS
		case p.consume("NMTOKEN"):
			def.Type = AttNMTOKEN
		case p.consume("NOTATION"):
			def.Type = AttNotation
			p.skipSpace()
			if !p.consume("(") {
				return p.errf("NOTATION type requires a name list")
			}
			if def.Enum, err = p.nameList(); err != nil {
				return err
			}
		case strings.HasPrefix(p.src[p.pos:], "("):
			p.consume("(")
			def.Type = AttEnum
			if def.Enum, err = p.nameList(); err != nil {
				return err
			}
		default:
			return p.errf("bad attribute type for %q", attName)
		}
		p.skipSpace()
		switch {
		case p.consume("#REQUIRED"):
			def.Default = DefaultRequired
		case p.consume("#IMPLIED"):
			def.Default = DefaultImplied
		case p.consume("#FIXED"):
			def.Default = DefaultFixed
			p.skipSpace()
			v, err := p.quoted()
			if err != nil {
				return err
			}
			def.Value = v
		default:
			v, err := p.quoted()
			if err != nil {
				return err
			}
			def.Default = DefaultValue
			def.Value = v
		}
		d.Attlists[elem] = append(d.Attlists[elem], def)
	}
}

// nameList parses "a | b | c )" (the '(' is already consumed).
func (p *parser) nameList() ([]string, error) {
	var out []string
	for {
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && xmlparser.IsNameChar(rune(p.src[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return nil, p.errf("expected a name in list")
		}
		out = append(out, p.src[start:p.pos])
		p.skipSpace()
		if p.consume(")") {
			return out, nil
		}
		if !p.consume("|") {
			return nil, p.errf("expected '|' or ')' in name list")
		}
	}
}

func (p *parser) quoted() (string, error) {
	p.skipSpace()
	if p.eof() || (p.src[p.pos] != '"' && p.src[p.pos] != '\'') {
		return "", p.errf("expected a quoted literal")
	}
	q := p.src[p.pos]
	p.pos++
	end := strings.IndexByte(p.src[p.pos:], q)
	if end < 0 {
		return "", p.errf("unterminated literal")
	}
	out := p.src[p.pos : p.pos+end]
	p.pos += end + 1
	return out, nil
}

// entityDecl parses the rest of <!ENTITY name "value"> (parameter and
// external entities are recognized and skipped).
func (p *parser) entityDecl(d *DTD) error {
	p.skipSpace()
	if p.consume("%") {
		// Parameter entity: skip to '>'.
		if _, err := p.until(">"); err != nil {
			return err
		}
		return nil
	}
	name, err := p.name()
	if err != nil {
		return err
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "SYSTEM") || strings.HasPrefix(p.src[p.pos:], "PUBLIC") {
		if _, err := p.until(">"); err != nil {
			return err
		}
		return nil
	}
	v, err := p.quoted()
	if err != nil {
		return err
	}
	p.skipSpace()
	if !p.consume(">") {
		return p.errf("missing '>' after entity %q", name)
	}
	if _, dup := d.Entities[name]; !dup {
		d.Entities[name] = v
	}
	return nil
}

// notationDecl parses the rest of <!NOTATION name ...>.
func (p *parser) notationDecl(d *DTD) error {
	name, err := p.name()
	if err != nil {
		return err
	}
	if _, err := p.until(">"); err != nil {
		return err
	}
	d.Notations[name] = true
	return nil
}
