package dtd

import (
	"strings"
	"testing"

	"repro/internal/dom"
)

// poDTD is a DTD rendering of the purchase order vocabulary — the
// weaker description the paper says DTDs give (no value facets, no
// namespaces, limited typing).
const poDTD = `
<!ELEMENT purchaseOrder (shipTo, billTo, comment?, items)>
<!ATTLIST purchaseOrder orderDate CDATA #IMPLIED>
<!ELEMENT shipTo (name, street, city, state, zip)>
<!ATTLIST shipTo country NMTOKEN #FIXED "US">
<!ELEMENT billTo (name, street, city, state, zip)>
<!ATTLIST billTo country NMTOKEN #FIXED "US">
<!ELEMENT comment (#PCDATA)>
<!ELEMENT items (item*)>
<!ELEMENT item (productName, quantity, USPrice, comment?, shipDate?)>
<!ATTLIST item partNum CDATA #REQUIRED>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT USPrice (#PCDATA)>
<!ELEMENT shipDate (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
`

func parseDTD(t *testing.T, root, subset string) *DTD {
	t.Helper()
	d, err := Parse(root, subset)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return d
}

func TestParsePODTD(t *testing.T) {
	d := parseDTD(t, "purchaseOrder", poDTD)
	if len(d.Elements) != 15 {
		t.Errorf("elements: %d", len(d.Elements))
	}
	po := d.Elements["purchaseOrder"]
	if po.Kind != ContentChildren {
		t.Fatalf("purchaseOrder kind: %v", po.Kind)
	}
	if got := po.Model.String(); !strings.Contains(got, "comment?") {
		t.Errorf("model: %s", got)
	}
	item := d.Attlists["item"]
	if len(item) != 1 || item[0].Default != DefaultRequired {
		t.Errorf("item attlist: %+v", item)
	}
	ship := d.Attlists["shipTo"]
	if ship[0].Type != AttNMTOKEN || ship[0].Default != DefaultFixed || ship[0].Value != "US" {
		t.Errorf("shipTo country: %+v", ship[0])
	}
}

func validateDoc(t *testing.T, d *DTD, src string) *Result {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Validate(d, doc)
}

func TestValidDocument(t *testing.T) {
	d := parseDTD(t, "purchaseOrder", poDTD)
	src := `<purchaseOrder>
	  <shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <items><item partNum="1"><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item></items>
	</purchaseOrder>`
	if res := validateDoc(t, d, src); !res.OK() {
		t.Fatalf("valid doc rejected: %v", res.Err())
	}
}

func TestContentModelViolations(t *testing.T) {
	d := parseDTD(t, "purchaseOrder", poDTD)
	// Wrong order.
	src := `<purchaseOrder>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <items/>
	</purchaseOrder>`
	if res := validateDoc(t, d, src); res.OK() {
		t.Error("wrong order accepted")
	}
	// Undeclared element.
	if res := validateDoc(t, d, `<purchaseOrder><mystery/></purchaseOrder>`); res.OK() {
		t.Error("undeclared element accepted")
	}
	// Wrong root.
	if res := validateDoc(t, d, `<items/>`); res.OK() {
		t.Error("wrong root accepted")
	}
}

// TestDTDCannotExpressFacets documents the §1 motivation: the DTD accepts
// values the XML Schema rejects (quantity 500, bad SKU), because DTDs
// cannot express facets — exactly why the paper moved to XML Schema.
func TestDTDCannotExpressFacets(t *testing.T) {
	d := parseDTD(t, "purchaseOrder", poDTD)
	src := `<purchaseOrder>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>not-a-zip</zip></shipTo>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <items><item partNum="definitely-not-a-SKU"><productName>p</productName><quantity>99999</quantity><USPrice>free!</USPrice></item></items>
	</purchaseOrder>`
	if res := validateDoc(t, d, src); !res.OK() {
		t.Errorf("DTD unexpectedly rejected facet violations: %v", res.Err())
	}
}

func TestAttributeChecks(t *testing.T) {
	d := parseDTD(t, "purchaseOrder", poDTD)
	// Missing required partNum.
	src := `<purchaseOrder>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <items><item><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item></items>
	</purchaseOrder>`
	res := validateDoc(t, d, src)
	if res.OK() || !strings.Contains(res.Err().Error(), "partNum") {
		t.Errorf("missing required attribute: %v", res.Err())
	}
	// Fixed violation.
	src2 := strings.Replace(src, `<shipTo>`, `<shipTo country="DE">`, 1)
	src2 = strings.Replace(src2, `<item>`, `<item partNum="1">`, 1)
	res = validateDoc(t, d, src2)
	if res.OK() || !strings.Contains(res.Err().Error(), "fixed value") {
		t.Errorf("fixed attribute: %v", res.Err())
	}
}

func TestIDsAndEnums(t *testing.T) {
	subset := `
<!ELEMENT graph (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED ref IDREF #IMPLIED kind (a|b) "a">
`
	d := parseDTD(t, "graph", subset)
	if res := validateDoc(t, d, `<graph><node id="x"/><node id="y" ref="x" kind="b"/></graph>`); !res.OK() {
		t.Fatalf("valid graph: %v", res.Err())
	}
	if res := validateDoc(t, d, `<graph><node id="x"/><node id="x"/></graph>`); res.OK() {
		t.Error("duplicate ID accepted")
	}
	if res := validateDoc(t, d, `<graph><node id="x" ref="zz"/></graph>`); res.OK() {
		t.Error("dangling IDREF accepted")
	}
	if res := validateDoc(t, d, `<graph><node id="x" kind="c"/></graph>`); res.OK() {
		t.Error("bad enum value accepted")
	}
}

func TestMixedContentDTD(t *testing.T) {
	subset := `
<!ELEMENT doc (para*)>
<!ELEMENT para (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
`
	d := parseDTD(t, "doc", subset)
	if res := validateDoc(t, d, `<doc><para>text <em>emph</em> more</para></doc>`); !res.OK() {
		t.Fatalf("mixed: %v", res.Err())
	}
	if res := validateDoc(t, d, `<doc><para><para>nested</para></para></doc>`); res.OK() {
		t.Error("disallowed mixed child accepted")
	}
}

func TestEmptyAndAny(t *testing.T) {
	subset := `
<!ELEMENT root (leaf, bag)>
<!ELEMENT leaf EMPTY>
<!ELEMENT bag ANY>
`
	d := parseDTD(t, "root", subset)
	if res := validateDoc(t, d, `<root><leaf/><bag><leaf/></bag></root>`); !res.OK() {
		t.Fatalf("EMPTY/ANY: %v", res.Err())
	}
	if res := validateDoc(t, d, `<root><leaf>content</leaf><bag/></root>`); res.OK() {
		t.Error("EMPTY with content accepted")
	}
}

func TestValidateDocumentFromDoctype(t *testing.T) {
	src := `<!DOCTYPE note [
<!ELEMENT note (to, body)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT body (#PCDATA)>
]>
<note><to>you</to><body>hi</body></note>`
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("doc with internal DTD: %v", res.Err())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<!ELEMENT a`,
		`<!ELEMENT a (b|c,d)>`,
		`<!ELEMENT a (b)> <!ELEMENT a (c)>`,
		`<!ATTLIST a x BOGUS #IMPLIED>`,
		`<!WHAT>`,
	}
	for _, s := range bad {
		if _, err := Parse("a", s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

func TestEntityAndNotationDecls(t *testing.T) {
	subset := `
<!ENTITY who "World">
<!ENTITY % param "ignored">
<!ENTITY ext SYSTEM "http://x/y">
<!NOTATION gif SYSTEM "image/gif">
<!ELEMENT root EMPTY>
<!ATTLIST root pic NOTATION (gif) #IMPLIED src ENTITY #IMPLIED>
`
	d := parseDTD(t, "root", subset)
	if d.Entities["who"] != "World" {
		t.Errorf("entity: %q", d.Entities["who"])
	}
	if !d.Notations["gif"] {
		t.Error("notation missing")
	}
	if res := validateDoc(t, d, `<root pic="gif" src="who"/>`); !res.OK() {
		t.Errorf("notation/entity attrs: %v", res.Err())
	}
	if res := validateDoc(t, d, `<root pic="png"/>`); res.OK() {
		t.Error("undeclared notation accepted")
	}
	if res := validateDoc(t, d, `<root src="nobody"/>`); res.OK() {
		t.Error("undeclared entity accepted")
	}
}
