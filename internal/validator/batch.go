package validator

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/dom"
)

// ValidateBatch validates every document concurrently through a bounded
// worker pool and returns one Result per document, index-aligned with
// docs. The pool size is Options.Parallelism (defaulting to
// runtime.GOMAXPROCS(0)); all workers share this Validator's compiled
// content-model cache, so a schema's automata are built at most once for
// the whole batch. Nil documents yield a Result with a single violation
// rather than a panic.
//
// This is the bulk path for the ROADMAP's repeated same-schema workload:
// xsdcheck uses it to validate its file arguments in parallel.
func (v *Validator) ValidateBatch(docs []*dom.Document) []*Result {
	results, _ := v.ValidateBatchContext(context.Background(), docs)
	return results
}

// ValidateBatchContext is ValidateBatch with cancellation. When ctx is
// cancelled, in-flight documents finish but no new ones start; the
// returned error is ctx.Err() and the unprocessed slots of the result
// slice are nil. A nil slice is returned only for an empty batch.
func (v *Validator) ValidateBatchContext(ctx context.Context, docs []*dom.Document) ([]*Result, error) {
	if len(docs) == 0 {
		return nil, ctx.Err()
	}
	workers := v.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	results := make([]*Result, len(docs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = v.validateOne(docs[i])
			}
		}()
	}
	var err error
feed:
	for i := range docs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return results, err
}

// validateOne guards a single batch slot against nil documents.
func (v *Validator) validateOne(doc *dom.Document) *Result {
	if doc == nil {
		return &Result{Violations: []Violation{{Path: "/", Msg: "nil document"}}}
	}
	return v.ValidateDocument(doc)
}
