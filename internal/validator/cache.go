package validator

import (
	"sync"
	"sync/atomic"

	"repro/internal/contentmodel"
	"repro/internal/xsd"
)

// modelCache memoizes compiled content models for the lifetime of one
// Validator. Keys are *xsd.ComplexType identities (pointer equality): a
// resolved schema never aliases two distinct types to one definition, and
// a Validator never outlives its schema, so entries are never invalidated.
//
// The cache is safe for concurrent use. Lookups take the sync.Map fast
// path; the first goroutine to need a type compiles it under that entry's
// sync.Once while later arrivals for the same type block only on that one
// entry, not on a global lock. The compiled matchers themselves
// (Glushkov automata or backtracking interpreters) are immutable, so one
// matcher instance serves every concurrent validation run.
type modelCache struct {
	schema *xsd.Schema
	opts   Options  // DFA enablement knobs, fixed at Validator construction
	models sync.Map // *xsd.ComplexType -> *modelEntry

	// compiles counts actual CompileGlushkov/NewInterp builds (not
	// lookups); tests use it to prove each type compiles exactly once.
	compiles atomic.Int64
}

// modelEntry is one cache slot: a once-guarded compiled matcher.
type modelEntry struct {
	once    sync.Once
	matcher contentmodel.Matcher
}

// newModelCache creates an empty cache bound to the schema.
func newModelCache(schema *xsd.Schema, opts Options) *modelCache {
	return &modelCache{schema: schema, opts: opts}
}

// matcher returns the compiled content model for ct, building it on first
// use. It prefers the Glushkov position automaton and falls back to the
// backtracking interpreter when CompileGlushkov reports the model exceeds
// the position budget (contentmodel.ErrTooComplex).
func (c *modelCache) matcher(ct *xsd.ComplexType) contentmodel.Matcher {
	e, ok := c.models.Load(ct)
	if !ok {
		e, _ = c.models.LoadOrStore(ct, &modelEntry{})
	}
	entry := e.(*modelEntry)
	entry.once.Do(func() {
		c.compiles.Add(1)
		particle := c.schema.CompileParticle(ct.Particle)
		if g, err := contentmodel.CompileGlushkov(particle); err == nil {
			if !c.opts.DisableDFA {
				// Attach the lazy DFA inside the once, before the matcher
				// is published, sharing the schema-wide symbol interner.
				g.EnableDFA(c.schema.Symbols(), c.opts.DFAStateBudget)
			}
			entry.matcher = g
		} else {
			entry.matcher = contentmodel.NewInterp(particle)
		}
	})
	return entry.matcher
}

// CompiledModels reports how many distinct content models this
// Validator has compiled so far — a cache-effectiveness probe: under
// repeated or concurrent validation of same-schema documents it stays
// bounded by the number of complex types the documents exercise.
func (v *Validator) CompiledModels() int {
	return int(v.models.compiles.Load())
}
