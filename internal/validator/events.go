package validator

// Streaming observer hook: a second consumer for the streaming pass.
//
// The streaming validator already computes, frame by frame, everything a
// schema-directed decoder needs — the governing declaration for every
// element (after substitution and xsi:type resolution), the parsed simple
// value for every text leaf, and the exact boundaries of unvalidated
// wildcard subtrees. StreamEvents exposes those facts as callbacks so a
// consumer (internal/bind) can build typed values in the same O(depth)
// pass, without re-deriving any of it and without the validator knowing
// anything about binding.
//
// Verdict parity is untouched: events are fired from the existing frame
// transitions and never alter them. On invalid documents the callback
// sequence still pairs every OpenElement with a CloseElement, so a
// consumer's stack stays balanced; whether to trust the partial structure
// is the consumer's call (bind discards it).

import (
	"context"
	"io"

	"repro/internal/dom"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// StreamEvents receives structural callbacks during a streaming validation
// pass. Implementations must not retain the *xmlparser.Token or the
// *dom.Element beyond the call: tokens are reused by the decoder loop and
// fallback elements live in a pooled document that is released when the
// callback returns.
type StreamEvents interface {
	// OpenElement fires when a validated element opens. decl is the
	// governing declaration (after wildcard/substitution resolution), typ
	// the effective type (after xsi:type). nilled marks xsi:nil="true";
	// wildcard marks an element admitted by a content-model wildcard.
	OpenElement(decl *xsd.ElementDecl, typ xsd.Type, tok *xmlparser.Token, nilled, wildcard bool)

	// CloseElement fires when the matching element closes. val is the
	// parsed simple value for simple-typed and simple-content elements
	// (nil when the element has no simple value or its text failed to
	// parse — the document is invalid in that case).
	CloseElement(val *xsdtypes.Value)

	// MixedText fires for character data directly inside a mixed-content
	// element, one call per text or CDATA token, in document order.
	MixedText(data string)

	// RawToken fires for every token of a skipped wildcard subtree (a lax
	// wildcard match with no global declaration), starting with the
	// subtree's own start tag. The consumer sees the raw token stream and
	// may rebuild the fragment; the validator guarantees nothing about it.
	RawToken(tok *xmlparser.Token)

	// FallbackElement fires when a subtree the streaming path buffered
	// for the recursive DOM validator (identity constraints, non-Glushkov
	// models) has been validated. root is the buffered subtree with the
	// in-scope namespace bindings grafted on; it is released after the
	// callback returns. No OpenElement/CloseElement pair is delivered for
	// elements inside a fallback subtree.
	FallbackElement(decl *xsd.ElementDecl, root *dom.Element, wildcard bool)
}

// ValidateReaderEvents is ValidateReaderContext with an event observer:
// ev receives the structural callbacks above while the verdict is computed
// exactly as without an observer.
func (sv *StreamValidator) ValidateReaderEvents(ctx context.Context, r io.Reader, ev StreamEvents) (*Result, error) {
	return sv.validate(ctx, xmlparser.NewReaderDecoder(r, nil), ev)
}

// ValidateBytesEvents is ValidateBytes with an event observer.
func (sv *StreamValidator) ValidateBytesEvents(src []byte, ev StreamEvents) *Result {
	res, _ := sv.validate(context.Background(), xmlparser.NewDecoder(src, nil), ev)
	return res
}
