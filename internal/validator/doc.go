// Package validator checks DOM documents against a parsed XML Schema at
// runtime. This is the paper's baseline: with plain DOM, "invalid
// documents usually cannot be detected until runtime requiring extensive
// testing" (§2) — this package is that runtime detection, and the E2
// benchmarks measure exactly the cost V-DOM's static guarantee removes.
//
// Beyond the paper's scope it also implements the features the paper
// explicitly defers (§3): wildcard validation, ID/IDREF integrity and
// identity constraints (xs:unique/key/keyref).
//
// # Role in the pipeline
//
// validator sits at the end of the runtime half of the pipeline
// (xsd parse → normalize → contentmodel → codegen/vdom → validator →
// pxml): it consumes the resolved component model from package xsd and
// the compiled matchers from package contentmodel, and judges trees built
// by package dom. The test suite also uses it as the independent oracle
// that everything the typed V-DOM API (package vdom) can express
// marshals to a valid document.
//
// # Streaming entry points
//
// Validator.Stream returns a StreamValidator, which decides validity
// incrementally from the token stream instead of a materialized tree:
// StreamValidator.ValidateReader consumes an io.Reader with memory
// proportional to tree depth (O(depth), no DOM allocation), and
// StreamValidator.ValidateBytes is its in-memory counterpart.
// ValidateReaderContext is the cancellable form — it checks the context
// between token batches and returns (nil, ctx.Err()) on expiry, the
// same contract as ValidateBatchContext; servers use it to stop
// validating when a request's deadline fires mid-stream. Both drive
// the same cached Glushkov automata as the DOM path through an explicit
// element/automaton-state stack and reproduce ValidateDocument's
// verdicts, violation order and messages exactly (held by the
// TestStreamMatchesDOM differential suite). Subtrees the streaming pass
// cannot decide incrementally — identity constraints, or content models
// compiled to the backtracking interpreter — are buffered privately and
// degrade to the recursive DOM path. cmd/xsdcheck exposes the streaming
// path as -stream.
//
// # Intra-document parallelism
//
// Validator.ParallelValidate splits one large document across a
// GOMAXPROCS-bounded worker pool at sibling-subtree boundaries: the
// walk descends until it finds a level with at least ParallelMinFanout
// children, fans contiguous chunks of that level out to workers running
// the ordinary cached-DFA walk, and joins the document-global state —
// ordered violations, first-wins ID semantics, IDREF resolution — at
// the seams via per-sub-run ID journals (see parallel.go). The verdict
// is byte-identical to ValidateDocument's, enforced by differential
// tests and FuzzParallelValidate; documents that reach the violation
// cap fall back to a sequential rerun. cmd/xsdcheck exposes it as
// -parallel, xsdserved as ?parallel=1 (size-gated).
//
// # Concurrency
//
// A Validator is safe for concurrent use by multiple goroutines and is
// intended to be shared: all mutable per-run state is private to each
// call, and compiled content models are memoized per complex type in a
// lock-free cache (sync.Map of sync.Once entries) for the Validator's
// lifetime, so each automaton is built exactly once no matter how many
// goroutines validate at once. Cached entries are never invalidated —
// the schema is immutable once resolved. ValidateBatch fans a document
// slice out over a bounded worker pool (Options.Parallelism, default
// GOMAXPROCS) on top of the same shared cache. A StreamValidator holds
// no per-run state either: it shares only the parent Validator's
// immutable schema and thread-safe model cache, so one StreamValidator
// may serve any number of goroutines, interleaved freely with DOM-path
// runs on the same Validator (asserted under -race by
// TestStreamConcurrent). Documents are only read; callers must not
// mutate a document while it is being validated.
package validator
