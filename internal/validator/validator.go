package validator

import (
	"fmt"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
)

// Violation is one validity error with its document location.
type Violation struct {
	// Path is an XPath-like location of the offending node, with 1-based
	// positional predicates for repeated siblings
	// (/purchaseOrder/items/item[2]) and an @name step for attributes.
	Path string
	// Msg is the human-readable description of the violation, phrased
	// against the schema component that was not satisfied.
	Msg string
}

// Error formats the violation.
func (v Violation) Error() string { return v.Path + ": " + v.Msg }

// Result collects the violations of one validation run. A Result is
// owned by its caller; the Validator keeps no reference to it after
// returning, so results from concurrent runs never share state.
type Result struct {
	// Violations are the collected validity errors in document order,
	// capped at maxViolations per run. Empty means the document is valid.
	Violations []Violation
}

// OK reports whether the document was valid.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a valid document and an error summarizing the
// violations otherwise.
func (r *Result) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		msgs = append(msgs, v.Error())
	}
	return fmt.Errorf("document is invalid:\n  %s", strings.Join(msgs, "\n  "))
}

// maxViolations bounds error collection.
const maxViolations = 100

// Options tunes validation. The zero value is the default configuration:
// full ID/IDREF checking and a GOMAXPROCS-sized batch worker pool.
type Options struct {
	// SkipIDChecks disables document-level ID uniqueness and IDREF
	// resolution (the paper-excluded extension); structural and
	// simple-type checking is unaffected.
	SkipIDChecks bool
	// Parallelism bounds the worker pool used by ValidateBatch. Zero or
	// negative means runtime.GOMAXPROCS(0). It has no effect on the
	// single-document entry points.
	Parallelism int
	// DisableDFA turns off the lazy-DFA content-model executor and steps
	// the Glushkov automata as NFAs (the pre-DFA behavior). Verdicts and
	// messages are identical either way; this is an escape hatch and a
	// benchmarking aid.
	DisableDFA bool
	// DFAStateBudget caps memoized DFA states per content model before a
	// run falls back to NFA stepping. Zero means
	// contentmodel.DefaultDFABudget.
	DFAStateBudget int
	// ElementObserver, when non-nil, is invoked with the governing
	// declaration of every element the walk visits. It exists for
	// instrumentation — codegen's instance-corpus pruning pass uses it to
	// record which declarations a sample document set reaches — and has no
	// effect on verdicts.
	ElementObserver func(decl *xsd.ElementDecl)
}

// Validator validates documents against one schema.
//
// A Validator is safe for concurrent use: any number of goroutines may
// call ValidateDocument, ValidateElement and ValidateBatch on one shared
// instance. All per-run state lives in a private run value, and the
// compiled content models are shared through a thread-safe cache
// (modelCache) that builds each complex type's automaton exactly once for
// the Validator's lifetime. The documents being validated are only read,
// never written — but callers must not mutate a document concurrently
// with its validation.
type Validator struct {
	schema *xsd.Schema
	opts   Options
	// models caches compiled content models per complex type, shared
	// across all runs (and all goroutines) of this Validator.
	models *modelCache
}

// New creates a validator for the schema. Passing nil opts selects the
// defaults (see Options). The schema must already be resolved and must
// not be mutated for the lifetime of the Validator.
func New(schema *xsd.Schema, opts *Options) *Validator {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	return &Validator{schema: schema, opts: o, models: newModelCache(schema, o)}
}

// ValidateDocument validates a whole document: the root element must match
// a global element declaration.
func (v *Validator) ValidateDocument(doc *dom.Document) *Result {
	run := &run{v: v, ids: map[string]string{}}
	root := doc.DocumentElement()
	if root == nil {
		run.violate("/", "document has no root element")
		return &run.res
	}
	name := xsd.QName{Space: root.NamespaceURI(), Local: root.LocalName()}
	decl, ok := v.schema.LookupElement(name)
	if !ok {
		run.violate("/"+root.TagName(), fmt.Sprintf("no global declaration for root element %s", name))
		return &run.res
	}
	run.element(root, decl, "/"+root.TagName())
	run.checkIDRefs()
	return &run.res
}

// ValidateElement validates a subtree against a specific declaration.
func (v *Validator) ValidateElement(el *dom.Element, decl *xsd.ElementDecl) *Result {
	run := &run{v: v, ids: map[string]string{}}
	run.element(el, decl, "/"+el.TagName())
	run.checkIDRefs()
	return &run.res
}

// run carries one validation pass.
type run struct {
	v   *Validator
	res Result
	// ids maps seen ID values to their paths; idrefs records pending
	// references, resolved once the whole document has been walked.
	ids    map[string]string
	idrefs []pendingRef
	// onIDInsert, when set, observes every new ID insertion into ids.
	// The streaming path uses it to journal insertions so a failed
	// subtree's IDs can be rolled back for DOM-verdict parity.
	onIDInsert func(id string)
	// journal records ID events in subtree order when journaling is set;
	// parallel sub-runs use it so seams can be joined exactly (parallel.go).
	journal    []idEvent
	journaling bool
	// parWorkers, when > 1, makes every elementContent level with at
	// least ParallelMinFanout children fan out to that many workers;
	// cleared while a pool is running so splits never nest.
	parWorkers int
}

// pendingRef is an IDREF awaiting resolution.
type pendingRef struct {
	id   string
	path string
}

func (r *run) violate(path, msg string) {
	if len(r.res.Violations) < maxViolations {
		r.res.Violations = append(r.res.Violations, Violation{Path: path, Msg: msg})
	}
}

// element validates el against its governing declaration.
func (r *run) element(el *dom.Element, decl *xsd.ElementDecl, path string) {
	if obs := r.v.opts.ElementObserver; obs != nil {
		obs(decl)
	}
	if len(r.res.Violations) >= maxViolations {
		return
	}
	typ := decl.Type
	// xsi:type may substitute a derived type.
	if lex := el.GetAttributeNS(xsd.XSINamespace, "type"); lex != "" {
		q, err := resolveInstanceQName(el, lex)
		if err != nil {
			r.violate(path, fmt.Sprintf("bad xsi:type %q: %v", lex, err))
			return
		}
		override, ok := r.v.schema.LookupType(q)
		if !ok {
			r.violate(path, fmt.Sprintf("xsi:type %s names an unknown type", q))
			return
		}
		if !derivesFromType(override, typ) {
			r.violate(path, fmt.Sprintf("xsi:type %s does not derive from the declared type", q))
			return
		}
		typ = override
	}
	if ct, ok := typ.(*xsd.ComplexType); ok && ct.Abstract {
		r.violate(path, fmt.Sprintf("type %s is abstract; an xsi:type of a concrete derived type is required", ct.Name))
		return
	}
	// xsi:nil.
	if lex := el.GetAttributeNS(xsd.XSINamespace, "nil"); lex != "" {
		if !decl.Nillable {
			r.violate(path, "xsi:nil on a non-nillable element")
			return
		}
		if lex == "true" || lex == "1" {
			if len(el.ChildNodes()) > 0 {
				r.violate(path, "nilled element must be empty")
			}
			return
		}
	}
	switch t := typ.(type) {
	case *xsd.SimpleType:
		r.simpleContent(el, t, decl, path)
		r.checkNoAttributes(el, path)
	case *xsd.ComplexType:
		r.complexElement(el, t, decl, path)
	}
	r.checkIdentityConstraints(el, decl, path)
}

// derivesFromType checks the derivation relation across simple/complex.
func derivesFromType(t, anc xsd.Type) bool {
	if t == anc {
		return true
	}
	switch x := t.(type) {
	case *xsd.ComplexType:
		return x.DerivesFrom(anc)
	case *xsd.SimpleType:
		if a, ok := anc.(*xsd.SimpleType); ok {
			return x.DerivesFrom(a)
		}
	}
	return false
}

// simpleContent validates character-only content.
func (r *run) simpleContent(el *dom.Element, st *xsd.SimpleType, decl *xsd.ElementDecl, path string) {
	for _, c := range el.ChildNodes() {
		if _, ok := c.(*dom.Element); ok {
			r.violate(path, "element content is not allowed in a simple-type element")
			return
		}
	}
	text := el.TextContent()
	if decl != nil && decl.Fixed != nil && text == "" {
		text = *decl.Fixed
	}
	if decl != nil && decl.Default != nil && text == "" {
		text = *decl.Default
	}
	val, err := st.Parse(text)
	if err != nil {
		r.violate(path, err.Error())
		return
	}
	if decl != nil && decl.Fixed != nil {
		want, ferr := st.Parse(*decl.Fixed)
		if ferr == nil && !val.Equal(want) {
			r.violate(path, fmt.Sprintf("value %q does not equal the fixed value %q", text, *decl.Fixed))
		}
	}
	r.trackIDs(st, text, path)
}

// trackIDs records ID/IDREF values for document-level integrity.
func (r *run) trackIDs(st *xsd.SimpleType, lexical string, path string) {
	if r.v.opts.SkipIDChecks {
		return
	}
	b := st.PrimitiveBuiltin()
	if b == nil {
		return
	}
	switch b.Name {
	case "ID":
		r.trackID(lexical, path)
	case "IDREF":
		r.trackIDRef(lexical, path)
	case "IDREFS":
		r.trackIDRefs(lexical, path)
	}
}

func (r *run) trackID(lexical, path string) {
	norm := strings.Join(strings.Fields(lexical), " ")
	if r.journaling {
		_, dup := r.ids[norm]
		r.journal = append(r.journal, idEvent{id: norm, path: path, vioIdx: len(r.res.Violations), dup: dup})
	}
	if prev, dup := r.ids[norm]; dup {
		r.violate(path, fmt.Sprintf("duplicate ID %q (first declared at %s)", norm, prev))
	} else {
		r.ids[norm] = path
		if r.onIDInsert != nil {
			r.onIDInsert(norm)
		}
	}
}

func (r *run) trackIDRef(lexical, path string) {
	norm := strings.Join(strings.Fields(lexical), " ")
	r.idrefs = append(r.idrefs, pendingRef{id: norm, path: path})
}

func (r *run) trackIDRefs(lexical, path string) {
	norm := strings.Join(strings.Fields(lexical), " ")
	for _, ref := range strings.Fields(norm) {
		r.idrefs = append(r.idrefs, pendingRef{id: ref, path: path})
	}
}

// checkIDRefs resolves collected IDREFs against seen IDs.
func (r *run) checkIDRefs() {
	for _, pending := range r.idrefs {
		if _, ok := r.ids[pending.id]; !ok {
			r.violate(pending.path, fmt.Sprintf("IDREF %q does not match any ID", pending.id))
		}
	}
}

// checkNoAttributes flags attributes on simple-typed elements (only
// xsi:/xmlns are allowed).
func (r *run) checkNoAttributes(el *dom.Element, path string) {
	for _, a := range el.Attributes() {
		if isMetaAttr(a) {
			continue
		}
		r.violate(path, fmt.Sprintf("attribute %q is not allowed on a simple-type element", a.NodeName()))
	}
}

func isMetaAttr(a *dom.Attr) bool {
	space := a.Name().Space
	return space == xmlparser.XMLNSNamespace || space == xsd.XSINamespace || space == xmlparser.XMLNamespace
}

// complexElement validates an element governed by a complex type.
func (r *run) complexElement(el *dom.Element, ct *xsd.ComplexType, decl *xsd.ElementDecl, path string) {
	r.attributes(el, ct, path)
	switch ct.Kind {
	case xsd.ContentSimple:
		for _, c := range el.ChildNodes() {
			if _, ok := c.(*dom.Element); ok {
				r.violate(path, "element content is not allowed in simple content")
				return
			}
		}
		text := el.TextContent()
		if _, err := ct.SimpleContentType.Parse(text); err != nil {
			r.violate(path, err.Error())
		}
		r.trackIDs(ct.SimpleContentType, text, path)
	case xsd.ContentEmpty:
		for _, c := range el.ChildNodes() {
			switch x := c.(type) {
			case *dom.Element:
				r.violate(path, fmt.Sprintf("element <%s> is not allowed in empty content", x.TagName()))
				return
			case *dom.Text:
				if strings.TrimSpace(x.Data) != "" {
					r.violate(path, "character data is not allowed in empty content")
					return
				}
			case *dom.CDATASection:
				r.violate(path, "character data is not allowed in empty content")
				return
			}
		}
	case xsd.ContentElementOnly, xsd.ContentMixed:
		r.elementContent(el, ct, path)
	}
}

// elementContent validates children against the content model.
func (r *run) elementContent(el *dom.Element, ct *xsd.ComplexType, path string) {
	var symbols []contentmodel.Symbol
	var children []*dom.Element
	for _, c := range el.ChildNodes() {
		switch x := c.(type) {
		case *dom.Element:
			symbols = append(symbols, contentmodel.Symbol{Space: x.NamespaceURI(), Local: x.LocalName()})
			children = append(children, x)
		case *dom.Text:
			if ct.Kind != xsd.ContentMixed && strings.TrimSpace(x.Data) != "" {
				r.violate(path, fmt.Sprintf("character data %q is not allowed in element-only content", snippet(x.Data)))
			}
		case *dom.CDATASection:
			if ct.Kind != xsd.ContentMixed {
				r.violate(path, "character data is not allowed in element-only content")
			}
		}
	}
	leaves, merr := r.v.models.matcher(ct).Match(symbols)
	if merr != nil {
		loc := path
		if merr.Index < len(children) {
			loc = childPath(path, children[merr.Index])
		}
		r.violate(loc, merr.Error())
		return
	}
	if w := r.parWorkers; w > 1 && len(children) >= ParallelMinFanout {
		// Split this level across the pool. The flag is cleared while the
		// workers run (sub-runs never nest pools) and restored after the
		// join, so every sufficiently wide level splits — the walk descends
		// sequentially through narrow levels to find the fan-out.
		r.parWorkers = 0
		handled := r.parallelChildren(children, leaves, path, w)
		r.parWorkers = w
		if handled {
			return
		}
	}
	counts := map[string]int{}
	for i, child := range children {
		cpath := childPathIndexed(path, child, counts)
		switch data := leaves[i].Data.(type) {
		case *xsd.ElementDecl:
			resolved, err := r.v.schema.ResolveChild(data, xsd.QName{Space: child.NamespaceURI(), Local: child.LocalName()})
			if err != nil {
				r.violate(cpath, err.Error())
				continue
			}
			r.element(child, resolved, cpath)
		case *contentmodel.Wildcard:
			// Lax wildcard processing: validate when a global
			// declaration exists, accept otherwise.
			name := xsd.QName{Space: child.NamespaceURI(), Local: child.LocalName()}
			if gdecl, ok := r.v.schema.LookupElement(name); ok {
				r.element(child, gdecl, cpath)
			}
		}
	}
}

// attributes validates the attribute set of el against ct.
func (r *run) attributes(el *dom.Element, ct *xsd.ComplexType, path string) {
	seen := map[xsd.QName]bool{}
	for _, a := range el.Attributes() {
		if isMetaAttr(a) {
			continue
		}
		name := xsd.QName{Space: a.Name().Space, Local: a.Name().Local}
		seen[name] = true
		use := ct.FindAttributeUse(name)
		if use == nil || use.Prohibited {
			if ct.AttrWildcard != nil && ct.AttrWildcard.Admits(name.Space) {
				continue
			}
			r.violate(path, fmt.Sprintf("attribute %q is not declared for this element", a.NodeName()))
			continue
		}
		val, err := use.Decl.Type.Parse(a.Value())
		if err != nil {
			r.violate(path, fmt.Sprintf("attribute %q: %v", a.NodeName(), err))
			continue
		}
		if use.Fixed != nil {
			want, ferr := use.Decl.Type.Parse(*use.Fixed)
			if ferr == nil && !val.Equal(want) {
				r.violate(path, fmt.Sprintf("attribute %q must have the fixed value %q", a.NodeName(), *use.Fixed))
			}
		}
		r.trackIDs(use.Decl.Type, a.Value(), path+"/@"+a.NodeName())
	}
	for _, use := range ct.AttributeUses {
		if use.Required && !use.Prohibited && !seen[use.Decl.Name] {
			r.violate(path, fmt.Sprintf("required attribute %q is missing", use.Decl.Name.Local))
		}
	}
}

// resolveInstanceQName resolves a QName lexical value against the
// namespace declarations in scope in the instance document.
func resolveInstanceQName(el *dom.Element, lexical string) (xsd.QName, error) {
	lexical = strings.TrimSpace(lexical)
	prefix, local := "", lexical
	if i := strings.IndexByte(lexical, ':'); i >= 0 {
		prefix, local = lexical[:i], lexical[i+1:]
	}
	if !xmlparser.IsNCName(local) || (prefix != "" && !xmlparser.IsNCName(prefix)) {
		return xsd.QName{}, fmt.Errorf("bad QName")
	}
	if prefix == "xml" {
		return xsd.QName{Space: xmlparser.XMLNamespace, Local: local}, nil
	}
	for n := dom.Node(el); n != nil; n = n.ParentNode() {
		e, ok := n.(*dom.Element)
		if !ok {
			continue
		}
		if prefix == "" {
			if e.HasAttributeNS(xmlparser.XMLNSNamespace, "xmlns") {
				return xsd.QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, "xmlns"), Local: local}, nil
			}
		} else if e.HasAttributeNS(xmlparser.XMLNSNamespace, prefix) {
			return xsd.QName{Space: e.GetAttributeNS(xmlparser.XMLNSNamespace, prefix), Local: local}, nil
		}
	}
	if prefix != "" {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q", prefix)
	}
	return xsd.QName{Local: local}, nil
}

// childPath appends a child step to a path.
func childPath(path string, child *dom.Element) string {
	return path + "/" + child.TagName()
}

// childPathIndexed appends a child step with a 1-based position index per
// tag name (item[1], item[2], ...).
func childPathIndexed(path string, child *dom.Element, counts map[string]int) string {
	counts[child.TagName()]++
	n := counts[child.TagName()]
	if n > 1 {
		return fmt.Sprintf("%s/%s[%d]", path, child.TagName(), n)
	}
	return path + "/" + child.TagName()
}

// snippet truncates text for error messages.
func snippet(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}

// ValidateBytes parses and validates a serialized document in one step —
// the "marshalling" baseline of the paper's §7 related-work discussion.
func ValidateBytes(schema *xsd.Schema, src []byte) (*dom.Document, *Result) {
	doc, err := dom.Parse(src)
	if err != nil {
		res := &Result{Violations: []Violation{{Path: "/", Msg: err.Error()}}}
		return nil, res
	}
	return doc, New(schema, nil).ValidateDocument(doc)
}
