package validator

// Identity constraints (xs:unique / xs:key / xs:keyref) — the feature the
// paper's §3 explicitly defers ("Currently we do not handle identity
// constraints"), implemented here as a clearly-marked extension over the
// restricted XPath subset the XML Schema recommendation defines for
// selectors and fields:
//
//	selector ::= path ( '|' path )*
//	path     ::= ('.//')? step ( '/' step )*
//	step     ::= '.' | NCName | prefix:NCName | '*'
//	field    ::= like selector, with an optional trailing '@attr'
//
// Prefixes are matched by local name only (a documented simplification:
// the repository's schemas put elements in at most one namespace).

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// xpathStep is one parsed step.
type xpathStep struct {
	// local is the name test ("*" matches any element); "." steps are
	// dropped at parse time.
	local string
}

// xpathPath is one alternative of a selector/field.
type xpathPath struct {
	descendant bool // leading ".//"
	steps      []xpathStep
	// attr is the trailing @attribute of a field path ("" otherwise).
	attr string
	// dot marks the "." field path (the element's own value).
	dot bool
}

// parseRestrictedXPath parses the subset; field selects field grammar.
func parseRestrictedXPath(expr string, field bool) ([]xpathPath, error) {
	var out []xpathPath
	for _, alt := range strings.Split(expr, "|") {
		alt = strings.TrimSpace(alt)
		if alt == "" {
			return nil, fmt.Errorf("empty path in %q", expr)
		}
		var p xpathPath
		if alt == "." {
			p.dot = true
			out = append(out, p)
			continue
		}
		rest := alt
		if strings.HasPrefix(rest, ".//") {
			p.descendant = true
			rest = rest[3:]
		}
		segs := strings.Split(rest, "/")
		for i, seg := range segs {
			seg = strings.TrimSpace(seg)
			seg = strings.TrimPrefix(seg, "child::")
			switch {
			case seg == ".":
				continue
			case strings.HasPrefix(seg, "@"):
				if !field || i != len(segs)-1 {
					return nil, fmt.Errorf("attribute step only allowed at the end of a field: %q", expr)
				}
				name := strings.TrimPrefix(seg, "@")
				if j := strings.IndexByte(name, ':'); j >= 0 {
					name = name[j+1:]
				}
				p.attr = name
			case seg == "":
				return nil, fmt.Errorf("empty step in %q", expr)
			default:
				name := seg
				if j := strings.IndexByte(name, ':'); j >= 0 {
					name = name[j+1:]
				}
				p.steps = append(p.steps, xpathStep{local: name})
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// selectNodes evaluates selector paths from a context element.
func selectNodes(ctx *dom.Element, paths []xpathPath) []*dom.Element {
	var out []*dom.Element
	seen := map[*dom.Element]bool{}
	add := func(e *dom.Element) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, p := range paths {
		if p.dot || len(p.steps) == 0 {
			add(ctx)
			continue
		}
		var frontier []*dom.Element
		if p.descendant {
			frontier = descendantsAndSelf(ctx)
		} else {
			frontier = []*dom.Element{ctx}
		}
		for _, step := range p.steps {
			var next []*dom.Element
			for _, e := range frontier {
				for _, c := range e.ChildElements() {
					if step.local == "*" || c.LocalName() == step.local {
						next = append(next, c)
					}
				}
			}
			frontier = next
		}
		for _, e := range frontier {
			add(e)
		}
	}
	return out
}

func descendantsAndSelf(e *dom.Element) []*dom.Element {
	out := []*dom.Element{e}
	for _, c := range e.ChildElements() {
		out = append(out, descendantsAndSelf(c)...)
	}
	return out
}

// fieldValue evaluates one field path on a selected node. ok is false when
// the field is absent.
func fieldValue(node *dom.Element, paths []xpathPath) (string, bool) {
	for _, p := range paths {
		targets := []*dom.Element{node}
		if len(p.steps) > 0 {
			targets = selectNodes(node, []xpathPath{{descendant: p.descendant, steps: p.steps}})
		}
		for _, tgt := range targets {
			if p.attr != "" {
				if tgt.HasAttribute(p.attr) {
					return tgt.GetAttribute(p.attr), true
				}
				continue
			}
			// Element value: its text content (only if it has no
			// element children, per the field restriction).
			hasElemChild := len(tgt.ChildElements()) > 0
			if !hasElemChild {
				return strings.TrimSpace(tgt.TextContent()), true
			}
		}
	}
	return "", false
}

// checkIdentityConstraints enforces the element's declared constraints
// over its subtree.
func (r *run) checkIdentityConstraints(el *dom.Element, decl *xsd.ElementDecl, path string) {
	if len(decl.Constraints) == 0 {
		return
	}
	// Key tables built in this scope, by constraint name.
	type table map[string]bool
	keyTables := map[xsd.QName]table{}
	var keyrefs []*xsd.IdentityConstraint

	for _, ic := range decl.Constraints {
		selPaths, err := parseRestrictedXPath(ic.Selector, false)
		if err != nil {
			r.violate(path, fmt.Sprintf("identity constraint %s: bad selector: %v", ic.Name.Local, err))
			continue
		}
		var fieldPaths [][]xpathPath
		bad := false
		for _, f := range ic.Fields {
			fp, err := parseRestrictedXPath(f, true)
			if err != nil {
				r.violate(path, fmt.Sprintf("identity constraint %s: bad field: %v", ic.Name.Local, err))
				bad = true
				break
			}
			fieldPaths = append(fieldPaths, fp)
		}
		if bad {
			continue
		}
		if ic.Kind == xsd.ConstraintKeyref {
			keyrefs = append(keyrefs, ic)
			// Evaluated after the referenced key's table exists.
			continue
		}
		tbl := table{}
		for _, node := range selectNodes(el, selPaths) {
			var parts []string
			missing := false
			for _, fp := range fieldPaths {
				v, ok := fieldValue(node, fp)
				if !ok {
					missing = true
					break
				}
				parts = append(parts, v)
			}
			if missing {
				if ic.Kind == xsd.ConstraintKey {
					r.violate(path, fmt.Sprintf("key %s: a selected node is missing a field", ic.Name.Local))
				}
				continue // unique tolerates absent fields
			}
			keyStr := strings.Join(parts, "\x1f")
			if tbl[keyStr] {
				r.violate(path, fmt.Sprintf("%s %s: duplicate value {%s}", ic.Kind, ic.Name.Local, strings.Join(parts, ", ")))
				continue
			}
			tbl[keyStr] = true
		}
		keyTables[ic.Name] = tbl
	}

	for _, ic := range keyrefs {
		refTbl, ok := keyTables[ic.Refer]
		if !ok {
			r.violate(path, fmt.Sprintf("keyref %s refers to unknown key %s in this scope", ic.Name.Local, ic.Refer.Local))
			continue
		}
		selPaths, _ := parseRestrictedXPath(ic.Selector, false)
		var fieldPaths [][]xpathPath
		for _, f := range ic.Fields {
			fp, _ := parseRestrictedXPath(f, true)
			fieldPaths = append(fieldPaths, fp)
		}
		for _, node := range selectNodes(el, selPaths) {
			var parts []string
			missing := false
			for _, fp := range fieldPaths {
				v, ok := fieldValue(node, fp)
				if !ok {
					missing = true
					break
				}
				parts = append(parts, v)
			}
			if missing {
				continue
			}
			if !refTbl[strings.Join(parts, "\x1f")] {
				r.violate(path, fmt.Sprintf("keyref %s: value {%s} does not match any %s key", ic.Name.Local, strings.Join(parts, ", "), ic.Refer.Local))
			}
		}
	}
}
