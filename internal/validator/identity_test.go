package validator

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// icSchema declares a purchase order flavored vocabulary with unique, key
// and keyref constraints — the XML Schema Primer's own examples, which the
// paper defers.
const icSchema = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="ItemType">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string" minOccurs="0"/>
    </xsd:sequence>
    <xsd:attribute name="partNum" type="xsd:string"/>
    <xsd:attribute name="dept" type="xsd:string"/>
  </xsd:complexType>
  <xsd:complexType name="RefType">
    <xsd:attribute name="part" type="xsd:string" use="required"/>
  </xsd:complexType>
  <xsd:complexType name="OrderType">
    <xsd:sequence>
      <xsd:element name="item" type="ItemType" minOccurs="0" maxOccurs="unbounded"/>
      <xsd:element name="ref" type="RefType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="order" type="OrderType">
    <xsd:key name="pk">
      <xsd:selector xpath="item"/>
      <xsd:field xpath="@partNum"/>
    </xsd:key>
    <xsd:keyref name="pref" refer="pk">
      <xsd:selector xpath="ref"/>
      <xsd:field xpath="@part"/>
    </xsd:keyref>
    <xsd:unique name="uq">
      <xsd:selector xpath=".//item"/>
      <xsd:field xpath="sku"/>
    </xsd:unique>
  </xsd:element>
</xsd:schema>`

func icValidator(t *testing.T) *Validator {
	t.Helper()
	s, err := xsd.ParseString(icSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(s, nil)
}

func icValidate(t *testing.T, src string) *Result {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return icValidator(t).ValidateDocument(doc)
}

func TestKeyAndKeyrefOK(t *testing.T) {
	res := icValidate(t, `<order>
	  <item partNum="100-AA"><sku>s1</sku></item>
	  <item partNum="200-BB"><sku>s2</sku></item>
	  <ref part="100-AA"/>
	</order>`)
	if !res.OK() {
		t.Fatalf("valid keyed document rejected: %v", res.Err())
	}
}

func TestDuplicateKey(t *testing.T) {
	res := icValidate(t, `<order>
	  <item partNum="100-AA"/>
	  <item partNum="100-AA"/>
	</order>`)
	if res.OK() || !strings.Contains(res.Err().Error(), "duplicate value") {
		t.Errorf("duplicate key: %v", res.Err())
	}
}

func TestMissingKeyField(t *testing.T) {
	res := icValidate(t, `<order><item/></order>`)
	if res.OK() || !strings.Contains(res.Err().Error(), "missing a field") {
		t.Errorf("key with absent field: %v", res.Err())
	}
}

func TestDanglingKeyref(t *testing.T) {
	res := icValidate(t, `<order>
	  <item partNum="100-AA"/>
	  <ref part="999-ZZ"/>
	</order>`)
	if res.OK() || !strings.Contains(res.Err().Error(), "does not match any pk key") {
		t.Errorf("dangling keyref: %v", res.Err())
	}
}

func TestUniqueToleratesAbsentField(t *testing.T) {
	// unique (unlike key) skips nodes without the field.
	res := icValidate(t, `<order>
	  <item partNum="1"><sku>s1</sku></item>
	  <item partNum="2"/>
	  <item partNum="3"/>
	</order>`)
	if !res.OK() {
		t.Fatalf("unique with absent fields: %v", res.Err())
	}
	// But duplicates among present fields are flagged.
	res = icValidate(t, `<order>
	  <item partNum="1"><sku>same</sku></item>
	  <item partNum="2"><sku>same</sku></item>
	</order>`)
	if res.OK() || !strings.Contains(res.Err().Error(), "unique uq") {
		t.Errorf("duplicate unique: %v", res.Err())
	}
}

func TestRestrictedXPathParsing(t *testing.T) {
	good := []string{"item", ".//item", "a/b/c", "po:item", ".", "a|b", "child::item"}
	for _, s := range good {
		if _, err := parseRestrictedXPath(s, false); err != nil {
			t.Errorf("selector %q: %v", s, err)
		}
	}
	if _, err := parseRestrictedXPath("@x/y", true); err == nil {
		t.Error("attribute step mid-path should fail")
	}
	if _, err := parseRestrictedXPath("a//b", false); err == nil {
		t.Error("internal '//' should fail")
	}
	if _, err := parseRestrictedXPath("@partNum", true); err != nil {
		t.Errorf("field @attr: %v", err)
	}
}
