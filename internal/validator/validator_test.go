package validator

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/xsd"
)

func poValidator(t *testing.T) *Validator {
	t.Helper()
	s, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(s, nil)
}

// validate parses and validates, failing the test on parse errors.
func validate(t *testing.T, v *Validator, src string) *Result {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return v.ValidateDocument(doc)
}

// wantViolation asserts an invalid result whose messages mention substr.
func wantViolation(t *testing.T, res *Result, substr string) {
	t.Helper()
	if res.OK() {
		t.Errorf("expected violation containing %q, document accepted", substr)
		return
	}
	for _, v := range res.Violations {
		if strings.Contains(v.Error(), substr) {
			return
		}
	}
	t.Errorf("no violation contains %q; got:\n%v", substr, res.Err())
}

// TestFig1DocumentIsValid: the paper's Figure 1 document is valid against
// the Figures 2/3 schema.
func TestFig1DocumentIsValid(t *testing.T) {
	v := poValidator(t)
	res := validate(t, v, schemas.PurchaseOrderDoc)
	if !res.OK() {
		t.Fatalf("Fig. 1 document should be valid:\n%v", res.Err())
	}
}

func TestMissingRequiredChild(t *testing.T) {
	v := poValidator(t)
	// No billTo.
	src := `<purchaseOrder>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <items/>
	</purchaseOrder>`
	wantViolation(t, validate(t, v, src), "billTo")
}

func TestWrongChildOrder(t *testing.T) {
	v := poValidator(t)
	src := `<purchaseOrder>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <items/>
	</purchaseOrder>`
	wantViolation(t, validate(t, v, src), "unexpected element")
}

func TestUnknownRootElement(t *testing.T) {
	v := poValidator(t)
	wantViolation(t, validate(t, v, `<order/>`), "no global declaration")
}

func TestSimpleTypeViolations(t *testing.T) {
	v := poValidator(t)
	base := func(quantity, price, partNum, date string) string {
		return `<purchaseOrder>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <items><item partNum="` + partNum + `">
	    <productName>p</productName>
	    <quantity>` + quantity + `</quantity>
	    <USPrice>` + price + `</USPrice>
	    ` + date + `
	  </item></items>
	</purchaseOrder>`
	}
	// All good.
	if res := validate(t, v, base("5", "9.99", "926-AA", "")); !res.OK() {
		t.Errorf("valid item rejected: %v", res.Err())
	}
	// quantity over maxExclusive 100.
	wantViolation(t, validate(t, v, base("100", "9.99", "926-AA", "")), "must be < 100")
	// quantity zero violates positiveInteger.
	wantViolation(t, validate(t, v, base("0", "9.99", "926-AA", "")), "must be >= 1")
	// Non-decimal price.
	wantViolation(t, validate(t, v, base("5", "cheap", "926-AA", "")), "USPrice")
	// SKU pattern.
	wantViolation(t, validate(t, v, base("5", "9.99", "926-aa", "")), "pattern")
	// Bad date.
	wantViolation(t, validate(t, v, base("5", "9.99", "926-AA", "<shipDate>next week</shipDate>")), "shipDate")
}

func TestAttributeValidation(t *testing.T) {
	v := poValidator(t)
	// Missing required partNum.
	src := `<purchaseOrder>
	  <shipTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>
	  <billTo><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo>
	  <items><item>
	    <productName>p</productName><quantity>1</quantity><USPrice>1</USPrice>
	  </item></items>
	</purchaseOrder>`
	wantViolation(t, validate(t, v, src), "required attribute \"partNum\"")

	// Undeclared attribute.
	src2 := strings.Replace(schemas.PurchaseOrderDoc, `<purchaseOrder orderDate="1999-10-20">`,
		`<purchaseOrder orderDate="1999-10-20" bogus="x">`, 1)
	wantViolation(t, validate(t, v, src2), `"bogus" is not declared`)

	// Fixed country attribute.
	src3 := strings.Replace(schemas.PurchaseOrderDoc, `<shipTo country="US">`, `<shipTo country="DE">`, 1)
	wantViolation(t, validate(t, v, src3), "fixed value")

	// Bad orderDate.
	src4 := strings.Replace(schemas.PurchaseOrderDoc, `orderDate="1999-10-20"`, `orderDate="tomorrow"`, 1)
	wantViolation(t, validate(t, v, src4), "orderDate")
}

func TestTextInElementOnlyContent(t *testing.T) {
	v := poValidator(t)
	src := strings.Replace(schemas.PurchaseOrderDoc, `<items>`, `<items>stray text`, 1)
	wantViolation(t, validate(t, v, src), "character data")
}

func TestTooManyOccurrences(t *testing.T) {
	v := poValidator(t)
	src := strings.Replace(schemas.PurchaseOrderDoc,
		`<comment>Hurry, my lawn is going wild</comment>`,
		`<comment>one</comment><comment>two</comment>`, 1)
	wantViolation(t, validate(t, v, src), "unexpected element comment")
}

func TestXsiType(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Base">
    <xsd:sequence><xsd:element name="a" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Derived">
    <xsd:complexContent><xsd:extension base="Base">
      <xsd:sequence><xsd:element name="b" type="xsd:string"/></xsd:sequence>
    </xsd:extension></xsd:complexContent>
  </xsd:complexType>
  <xsd:complexType name="Other">
    <xsd:sequence><xsd:element name="c" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="root" type="Base"/>
</xsd:schema>`
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := New(s, nil)
	xsiNS := `xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"`
	// Derived content under xsi:type.
	good := `<root ` + xsiNS + ` xsi:type="Derived"><a>x</a><b>y</b></root>`
	if res := validate(t, v, good); !res.OK() {
		t.Errorf("xsi:type=Derived: %v", res.Err())
	}
	// Derived content without xsi:type is invalid.
	wantViolation(t, validate(t, v, `<root><a>x</a><b>y</b></root>`), "unexpected element b")
	// Unrelated type.
	wantViolation(t, validate(t, v, `<root `+xsiNS+` xsi:type="Other"><c>z</c></root>`), "does not derive")
	// Unknown type.
	wantViolation(t, validate(t, v, `<root `+xsiNS+` xsi:type="Nope"><a>x</a></root>`), "unknown type")
}

func TestXsiNil(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="maybe" type="xsd:int" nillable="true"/>
  <xsd:element name="must" type="xsd:int"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	xsiNS := `xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"`
	if res := validate(t, v, `<maybe `+xsiNS+` xsi:nil="true"/>`); !res.OK() {
		t.Errorf("nilled element: %v", res.Err())
	}
	wantViolation(t, validate(t, v, `<maybe `+xsiNS+` xsi:nil="true">5</maybe>`), "must be empty")
	wantViolation(t, validate(t, v, `<must `+xsiNS+` xsi:nil="true"/>`), "non-nillable")
}

func TestSubstitutionGroupValidation(t *testing.T) {
	s, err := xsd.ParseString(schemas.AddressDerivationXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := New(s, nil)
	if res := validate(t, v, `<commentBlock><comment>a</comment><shipComment>b</shipComment></commentBlock>`); !res.OK() {
		t.Errorf("substitution members: %v", res.Err())
	}
	// The abstract head cannot appear.
	wantViolation(t, validate(t, v, `<noteBlock><note>x</note></noteBlock>`), "")
	if res := validate(t, v, `<noteBlock><shipNote>x</shipNote></noteBlock>`); !res.OK() {
		t.Errorf("abstract substitution member: %v", res.Err())
	}
}

func TestEmptyContent(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="E"><xsd:attribute name="k" type="xsd:string"/></xsd:complexType>
  <xsd:element name="empty" type="E"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	if res := validate(t, v, `<empty k="v"/>`); !res.OK() {
		t.Errorf("empty content: %v", res.Err())
	}
	wantViolation(t, validate(t, v, `<empty>text</empty>`), "empty content")
	wantViolation(t, validate(t, v, `<empty><x/></empty>`), "empty content")
}

func TestMixedContent(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Para" mixed="true">
    <xsd:sequence>
      <xsd:element name="b" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="p" type="Para"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	if res := validate(t, v, `<p>hello <b>bold</b> world</p>`); !res.OK() {
		t.Errorf("mixed content: %v", res.Err())
	}
}

func TestIDIntegrity(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Node">
    <xsd:attribute name="id" type="xsd:ID" use="required"/>
    <xsd:attribute name="ref" type="xsd:IDREF"/>
  </xsd:complexType>
  <xsd:complexType name="Graph">
    <xsd:sequence><xsd:element name="node" type="Node" maxOccurs="unbounded"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="graph" type="Graph"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	if res := validate(t, v, `<graph><node id="a"/><node id="b" ref="a"/></graph>`); !res.OK() {
		t.Errorf("id graph: %v", res.Err())
	}
	wantViolation(t, validate(t, v, `<graph><node id="a"/><node id="a"/></graph>`), "duplicate ID")
	wantViolation(t, validate(t, v, `<graph><node id="a" ref="zz"/></graph>`), "does not match any ID")
	// SkipIDChecks disables both.
	v2 := New(s, &Options{SkipIDChecks: true})
	if res := validate(t, v2, `<graph><node id="a"/><node id="a" ref="zz"/></graph>`); !res.OK() {
		t.Errorf("id checks not skipped: %v", res.Err())
	}
}

func TestWildcardValidation(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="known" type="xsd:int"/>
  <xsd:complexType name="Open">
    <xsd:sequence>
      <xsd:any minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="open" type="Open"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	// Unknown elements pass (lax).
	if res := validate(t, v, `<open><whatever/><more x="1"/></open>`); !res.OK() {
		t.Errorf("lax wildcard: %v", res.Err())
	}
	// Known global declarations are validated.
	wantViolation(t, validate(t, v, `<open><known>not-a-number</known></open>`), "known")
	if res := validate(t, v, `<open><known>42</known></open>`); !res.OK() {
		t.Errorf("valid known child: %v", res.Err())
	}
}

func TestViolationPaths(t *testing.T) {
	v := poValidator(t)
	src := strings.Replace(schemas.PurchaseOrderDoc, `<quantity>1</quantity>
      <USPrice>39.98</USPrice>`, `<quantity>500</quantity>
      <USPrice>39.98</USPrice>`, 1)
	res := validate(t, v, src)
	if res.OK() {
		t.Fatal("expected violation")
	}
	found := false
	for _, viol := range res.Violations {
		if strings.Contains(viol.Path, "item[2]") && strings.Contains(viol.Path, "quantity") {
			found = true
		}
	}
	if !found {
		t.Errorf("violation path should locate item[2]/quantity: %v", res.Err())
	}
}

func TestValidateBytes(t *testing.T) {
	s, _ := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	doc, res := ValidateBytes(s, []byte(schemas.PurchaseOrderDoc))
	if doc == nil || !res.OK() {
		t.Errorf("ValidateBytes: %v", res.Err())
	}
	_, res = ValidateBytes(s, []byte(`<unclosed>`))
	if res.OK() {
		t.Error("parse error should surface as violation")
	}
}

func TestFixedAndDefaultElementValues(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="version" type="xsd:string" fixed="1.0"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	if res := validate(t, v, `<version>1.0</version>`); !res.OK() {
		t.Errorf("matching fixed: %v", res.Err())
	}
	if res := validate(t, v, `<version/>`); !res.OK() {
		t.Errorf("empty fixed element takes the fixed value: %v", res.Err())
	}
	wantViolation(t, validate(t, v, `<version>2.0</version>`), "fixed")
}
