package validator

// Streaming validation: the paper's §5–6 pipeline compiles content models
// to Glushkov automata precisely so validity can be decided incrementally.
// StreamValidator drives those cached automata directly off the token
// stream with an explicit element/automaton-state stack — O(depth) memory,
// no DOM allocation — while reproducing ValidateDocument's verdicts and
// messages exactly.
//
// The DOM validator is not causal: when an element's content model fails,
// it reports the one match error and validates none of the children, and
// ID tracking never sees the abandoned subtree. A streaming pass has
// already validated the prefix children by the time the automaton rejects,
// so verdict parity needs two mechanisms:
//
//   - per-frame violation buffering: each open element accumulates its
//     attribute, text and child violations separately and assembles them
//     in DOM emission order at its end tag; a content-model failure drops
//     the buffered child violations wholesale.
//   - an ID journal: every insertion into the document-wide ID map is
//     journaled, and each frame records a high-water mark after its own
//     attributes; on content-model failure the IDs (and pending IDREFs)
//     recorded past the mark are rolled back. Between a frame's mark and
//     its failure only to-be-dropped descendants run, so rollback restores
//     exactly the state the DOM validator would have.
//
// Elements the streaming path cannot decide incrementally — identity
// constraints (which need the whole subtree) and content models compiled
// to the backtracking interpreter (contentmodel.ErrTooComplex) — degrade
// gracefully: their subtree is buffered into a private DOM fragment and
// validated by the ordinary recursive path, sharing the global ID state.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xmlparser"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// StreamValidator validates documents incrementally from a token stream.
// Obtain one with Validator.Stream. It holds no per-run state, so a single
// StreamValidator (like its parent Validator) is safe for concurrent use:
// each ValidateReader/ValidateBytes call allocates a private run and
// shares only the Validator's immutable schema and thread-safe model
// cache.
type StreamValidator struct {
	v *Validator
}

// Stream returns a streaming front-end over the validator. The returned
// StreamValidator shares v's compiled-model cache, so automata built by
// either path are reused by both.
func (v *Validator) Stream() *StreamValidator { return &StreamValidator{v: v} }

// ValidateReader validates a document read incrementally from r. Memory
// use is proportional to tree depth (plus any subtrees buffered for
// identity constraints), not document size. The verdict, violation order
// and messages match ValidateBytes on the same input.
func (sv *StreamValidator) ValidateReader(r io.Reader) *Result {
	res, _ := sv.ValidateReaderContext(context.Background(), r)
	return res
}

// ValidateReaderContext is ValidateReader with cancellation, mirroring
// ValidateBatchContext's semantics: when ctx is cancelled the run stops
// at the next token boundary, the partial verdict is discarded (a prefix
// proves nothing about the document) and the returned error is ctx.Err().
// A nil error means the stream was fully consumed and the Result is the
// same one ValidateReader would have produced.
//
// Cancellation is checked between tokens, so a Read blocked indefinitely
// on a dead reader is not interrupted by ctx alone; servers should pair
// the deadline with a transport-level one (net/http request bodies
// already fail their Reads when the connection closes).
func (sv *StreamValidator) ValidateReaderContext(ctx context.Context, r io.Reader) (*Result, error) {
	return sv.validate(ctx, xmlparser.NewReaderDecoder(r, nil), nil)
}

// ValidateBytes validates an in-memory document through the streaming
// path (no DOM is built). It is the drop-in counterpart of the package
// function ValidateBytes.
func (sv *StreamValidator) ValidateBytes(src []byte) *Result {
	res, _ := sv.validate(context.Background(), xmlparser.NewDecoder(src, nil), nil)
	return res
}

// ctxCheckEvery is how many tokens the streaming loop processes between
// cancellation checks: rare enough that the select never shows up in
// profiles, frequent enough that a deadline trips within microseconds.
const ctxCheckEvery = 256

func (sv *StreamValidator) validate(ctx context.Context, dec *xmlparser.Decoder, ev StreamEvents) (*Result, error) {
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
	}
	sr := &streamRun{v: sv.v, ids: map[string]string{}, events: ev}
	sinceCheck := 0
	for {
		if done != nil {
			if sinceCheck++; sinceCheck >= ctxCheckEvery {
				sinceCheck = 0
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
		}
		tok, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Parity with ValidateBytes: a malformed document yields
			// only the parse error, regardless of violations already
			// observed in the prefix.
			return &Result{Violations: []Violation{{Path: "/", Msg: err.Error()}}}, nil
		}
		sr.token(&tok)
	}
	sr.finish()
	return &sr.res, nil
}

// frame modes.
const (
	fmModel    = iota // complex element-only/mixed content, Glushkov Run
	fmSimple          // simple-typed element
	fmCSimple         // complex type with simple content
	fmCEmpty          // complex type with empty content
	fmNilled          // xsi:nil="true" on a nillable element
	fmDead            // xsi:type/abstract/nil gate failed; subtree skipped
	fmFallback        // subtree buffered for the DOM path
)

// frame is one open element on the streaming stack.
type frame struct {
	path string
	decl *xsd.ElementDecl
	mode int

	st    *xsd.SimpleType   // fmSimple / fmCSimple value type
	run   *contentmodel.Run // fmModel automaton state
	mixed bool

	// Buffered violations, assembled in DOM order at the end tag.
	attrViols   []Violation
	textViols   []Violation
	childViols  []Violation
	contentViol *Violation
	failed      bool

	sawElemChild bool
	textBuf      []byte   // accumulated character data (fmSimple/fmCSimple)
	plainAttrs   []string // fmSimple: non-meta attribute names for checkNoAttributes

	counts  []childCount // child tag -> occurrences, for indexed paths
	idMark  int          // ID journal mark after own attributes
	refMark int          // pending-IDREF mark
	nsMark  int          // namespace-binding stack mark

	// Event-observer bookkeeping: announced marks frames whose OpenElement
	// was delivered (and so owe a CloseElement); wild marks wildcard-
	// admitted elements; evVal carries the parsed simple value from
	// closeFrame to the CloseElement callback.
	announced bool
	wild      bool
	evVal     *xsdtypes.Value

	// fmFallback subtree buffer.
	fbDoc   *dom.Document
	fbRoot  *dom.Element
	fbCur   dom.Node
	fbDepth int

	// pooled marks a frame sitting on the free list; reset clears it.
	pooled bool
}

// childCount tracks occurrences of one child tag under a frame; the small
// linear list replaces a per-frame map (few distinct tags per element).
type childCount struct {
	tag string
	n   int
}

// reset re-initializes a recycled frame, keeping the capacity of its
// buffers (and the automaton run's internal state) for reuse.
func (f *frame) reset(path string, decl *xsd.ElementDecl, nsMark int) {
	run := f.run
	attrViols, textViols, childViols := f.attrViols[:0], f.textViols[:0], f.childViols[:0]
	plainAttrs, counts, textBuf := f.plainAttrs[:0], f.counts[:0], f.textBuf[:0]
	*f = frame{path: path, decl: decl, nsMark: nsMark,
		run: run, attrViols: attrViols, textViols: textViols,
		childViols: childViols, plainAttrs: plainAttrs, counts: counts, textBuf: textBuf}
}

// nsBinding is one in-scope namespace declaration. name is "xmlns" for the
// default namespace and the prefix otherwise — the same keys the DOM
// validator's ancestor walk uses.
type nsBinding struct {
	name string
	uri  string
}

// streamRun is one streaming validation pass.
type streamRun struct {
	v   *Validator
	res Result

	frames    []*frame
	free      []*frame // recycled frames; popped elements return here
	skipDepth int      // >0: inside an unvalidated subtree
	rootDone  bool

	// events, when non-nil, receives the structural callbacks; rawSkip
	// marks the current skipped subtree as observer-visible (a wildcard
	// match with no declaration) rather than an invalid one.
	events  StreamEvents
	rawSkip bool

	ns       []nsBinding
	attrSeen []xsd.QName // scratch for attributes()

	// Document-wide ID state, shared with fallback sub-runs. idJournal
	// records insertions so failed subtrees can be rolled back.
	ids       map[string]string
	idJournal []string
	idrefs    []pendingRef
}

func (sr *streamRun) top() *frame {
	if len(sr.frames) == 0 {
		return nil
	}
	return sr.frames[len(sr.frames)-1]
}

// newFrame returns a recycled or fresh frame.
func (sr *streamRun) newFrame(path string, decl *xsd.ElementDecl, nsMark int) *frame {
	if n := len(sr.free); n > 0 {
		f := sr.free[n-1]
		sr.free = sr.free[:n-1]
		f.reset(path, decl, nsMark)
		return f
	}
	return &frame{path: path, decl: decl, nsMark: nsMark}
}

// recycle returns a popped frame to the free list. Its buffered violations
// must already have been delivered (deliver copies them out). Recycling a
// frame twice would hand its contentmodel.Run to two live frames at once —
// exactly the interleaving the Run's single-owner contract forbids — so a
// double recycle panics here instead of corrupting a later match.
func (sr *streamRun) recycle(f *frame) {
	if f.pooled {
		panic("validator: stream frame recycled twice")
	}
	f.pooled = true
	sr.free = append(sr.free, f)
}

func (sr *streamRun) emit(v Violation) {
	if len(sr.res.Violations) < maxViolations {
		sr.res.Violations = append(sr.res.Violations, v)
	}
}

// skip marks the current start tag's subtree as unvalidated. The matching
// (possibly synthesized) end tag rebalances the counter.
func (sr *streamRun) skip() { sr.skipDepth = 1 }

// token dispatches one parse event.
func (sr *streamRun) token(tok *xmlparser.Token) {
	if sr.skipDepth > 0 {
		if sr.rawSkip {
			sr.events.RawToken(tok)
		}
		switch tok.Kind {
		case xmlparser.KindStartElement:
			sr.skipDepth++
		case xmlparser.KindEndElement:
			if sr.skipDepth--; sr.skipDepth == 0 {
				sr.rawSkip = false
			}
		}
		return
	}
	if f := sr.top(); f != nil && f.mode == fmFallback {
		sr.feedFallback(f, tok)
		return
	}
	switch tok.Kind {
	case xmlparser.KindStartElement:
		sr.startElement(tok)
	case xmlparser.KindEndElement:
		sr.endElement()
	case xmlparser.KindText:
		sr.textNode(tok, false)
	case xmlparser.KindCData:
		sr.textNode(tok, true)
	case xmlparser.KindComment, xmlparser.KindProcInst:
		// Comments and PIs are DOM child nodes: they violate only the
		// "nilled element must be empty" rule.
		if f := sr.top(); f != nil && f.mode == fmNilled && !f.failed {
			f.failed = true
			f.contentViol = &Violation{Path: f.path, Msg: "nilled element must be empty"}
		}
	}
}

func (sr *streamRun) startElement(tok *xmlparser.Token) {
	nsMark := len(sr.ns)
	for i := range tok.Attrs {
		if a := &tok.Attrs[i]; a.IsNamespaceDecl {
			sr.ns = append(sr.ns, nsBinding{name: a.Name.Local, uri: a.Value})
		}
	}
	if len(sr.frames) == 0 {
		if sr.rootDone {
			sr.ns = sr.ns[:nsMark]
			sr.skip()
			return
		}
		name := xsd.QName{Space: tok.Name.Space, Local: tok.Name.Local}
		decl, ok := sr.v.schema.LookupElement(name)
		if !ok {
			sr.emit(Violation{Path: "/" + tok.Name.Qualified(), Msg: fmt.Sprintf("no global declaration for root element %s", name)})
			sr.rootDone = true
			sr.ns = sr.ns[:nsMark]
			sr.skip()
			return
		}
		sr.openFrame(tok, decl, "/"+tok.Name.Qualified(), nsMark)
		return
	}
	parent := sr.top()
	switch parent.mode {
	case fmModel:
		if parent.failed {
			sr.skipChild(nsMark)
			return
		}
		leaf, merr := parent.run.Step(contentmodel.Symbol{Space: tok.Name.Space, Local: tok.Name.Local})
		if merr != nil {
			// The DOM validator reports the match error against the
			// failing child and validates no children at all: drop the
			// buffered child violations and roll back their IDs.
			parent.failed = true
			parent.contentViol = &Violation{Path: parent.path + "/" + tok.Name.Qualified(), Msg: merr.Error()}
			parent.childViols = nil
			sr.rollbackTo(parent)
			sr.skipChild(nsMark)
			return
		}
		cpath := parent.indexedChildPath(tok.Name.Qualified())
		switch data := leaf.Data.(type) {
		case *xsd.ElementDecl:
			resolved, err := sr.v.schema.ResolveChild(data, xsd.QName{Space: tok.Name.Space, Local: tok.Name.Local})
			if err != nil {
				parent.childViols = append(parent.childViols, Violation{Path: cpath, Msg: err.Error()})
				sr.skipChild(nsMark)
				return
			}
			sr.openFrame(tok, resolved, cpath, nsMark)
		case *contentmodel.Wildcard:
			// Lax wildcard processing: validate when a global
			// declaration exists, accept otherwise.
			if gdecl, ok := sr.v.schema.LookupElement(xsd.QName{Space: tok.Name.Space, Local: tok.Name.Local}); ok {
				sr.openWildFrame(tok, gdecl, cpath, nsMark)
			} else {
				if sr.events != nil {
					// Deliver the unvalidated subtree raw, starting with
					// this start tag.
					sr.events.RawToken(tok)
					sr.rawSkip = true
				}
				sr.skipChild(nsMark)
			}
		default:
			sr.skipChild(nsMark)
		}
	case fmSimple, fmCSimple:
		parent.sawElemChild = true
		sr.skipChild(nsMark)
	case fmCEmpty:
		if !parent.failed {
			parent.failed = true
			parent.contentViol = &Violation{Path: parent.path, Msg: fmt.Sprintf("element <%s> is not allowed in empty content", tok.Name.Qualified())}
		}
		sr.skipChild(nsMark)
	case fmNilled:
		if !parent.failed {
			parent.failed = true
			parent.contentViol = &Violation{Path: parent.path, Msg: "nilled element must be empty"}
		}
		sr.skipChild(nsMark)
	default: // fmDead
		sr.skipChild(nsMark)
	}
}

// skipChild discards the bindings pushed for the current start tag and
// skips its subtree.
func (sr *streamRun) skipChild(nsMark int) {
	sr.ns = sr.ns[:nsMark]
	sr.skip()
}

// openFrame replicates run.element's prologue (xsi:type, abstract,
// xsi:nil) and pushes the frame for the element's content.
func (sr *streamRun) openFrame(tok *xmlparser.Token, decl *xsd.ElementDecl, path string, nsMark int) {
	sr.pushFrame(tok, decl, path, nsMark, false)
}

// openWildFrame is openFrame for wildcard-admitted elements; the observer
// is told the element was reached through a wildcard, not a declaration.
func (sr *streamRun) openWildFrame(tok *xmlparser.Token, decl *xsd.ElementDecl, path string, nsMark int) {
	sr.pushFrame(tok, decl, path, nsMark, true)
}

// announce delivers OpenElement for a frame that passed the prologue.
func (sr *streamRun) announce(f *frame, typ xsd.Type, tok *xmlparser.Token, nilled bool) {
	if sr.events == nil {
		return
	}
	f.announced = true
	sr.events.OpenElement(f.decl, typ, tok, nilled, f.wild)
}

func (sr *streamRun) pushFrame(tok *xmlparser.Token, decl *xsd.ElementDecl, path string, nsMark int, wild bool) {
	f := sr.newFrame(path, decl, nsMark)
	f.wild = wild
	typ := decl.Type
	if lex, _ := tok.Attr(xsd.XSINamespace, "type"); lex != "" {
		q, err := sr.resolveQName(lex)
		if err != nil {
			sr.pushDead(f, fmt.Sprintf("bad xsi:type %q: %v", lex, err))
			return
		}
		override, ok := sr.v.schema.LookupType(q)
		if !ok {
			sr.pushDead(f, fmt.Sprintf("xsi:type %s names an unknown type", q))
			return
		}
		if !derivesFromType(override, typ) {
			sr.pushDead(f, fmt.Sprintf("xsi:type %s does not derive from the declared type", q))
			return
		}
		typ = override
	}
	if ct, ok := typ.(*xsd.ComplexType); ok && ct.Abstract {
		sr.pushDead(f, fmt.Sprintf("type %s is abstract; an xsi:type of a concrete derived type is required", ct.Name))
		return
	}
	if lex, _ := tok.Attr(xsd.XSINamespace, "nil"); lex != "" {
		if !decl.Nillable {
			sr.pushDead(f, "xsi:nil on a non-nillable element")
			return
		}
		if lex == "true" || lex == "1" {
			f.mode = fmNilled
			sr.frames = append(sr.frames, f)
			sr.announce(f, typ, tok, true)
			return
		}
	}
	// Degrade to the DOM path where streaming cannot decide: identity
	// constraints need the whole subtree, and Interp-compiled content
	// models are not incremental.
	fallback := len(decl.Constraints) > 0
	var g *contentmodel.Glushkov
	if ct, ok := typ.(*xsd.ComplexType); !fallback && ok &&
		(ct.Kind == xsd.ContentElementOnly || ct.Kind == xsd.ContentMixed) {
		g, _ = sr.v.models.matcher(ct).(*contentmodel.Glushkov)
		if g == nil {
			fallback = true
		}
	}
	if fallback {
		sr.startFallback(f, tok)
		return
	}
	switch t := typ.(type) {
	case *xsd.SimpleType:
		f.mode = fmSimple
		f.st = t
		for i := range tok.Attrs {
			if a := &tok.Attrs[i]; !isMetaAttrName(a.Name) {
				f.plainAttrs = append(f.plainAttrs, a.Name.Qualified())
			}
		}
	case *xsd.ComplexType:
		sr.attributes(f, tok, t)
		switch t.Kind {
		case xsd.ContentSimple:
			f.mode = fmCSimple
			f.st = t.SimpleContentType
		case xsd.ContentEmpty:
			f.mode = fmCEmpty
		default:
			f.mode = fmModel
			f.mixed = t.Kind == xsd.ContentMixed
			if f.run != nil {
				f.run.Reset(g)
			} else {
				f.run = g.Start()
			}
		}
	}
	f.idMark = len(sr.idJournal)
	f.refMark = len(sr.idrefs)
	sr.frames = append(sr.frames, f)
	sr.announce(f, typ, tok, false)
}

func (sr *streamRun) pushDead(f *frame, msg string) {
	f.mode = fmDead
	f.contentViol = &Violation{Path: f.path, Msg: msg}
	sr.frames = append(sr.frames, f)
}

func isMetaAttrName(n xmlparser.Name) bool {
	return n.Space == xmlparser.XMLNSNamespace || n.Space == xsd.XSINamespace || n.Space == xmlparser.XMLNamespace
}

// attributes replicates run.attributes over the start tag's attribute
// list, buffering violations into the frame.
func (sr *streamRun) attributes(f *frame, tok *xmlparser.Token, ct *xsd.ComplexType) {
	seen := sr.attrSeen[:0]
	for i := range tok.Attrs {
		a := &tok.Attrs[i]
		if isMetaAttrName(a.Name) {
			continue
		}
		name := xsd.QName{Space: a.Name.Space, Local: a.Name.Local}
		seen = append(seen, name)
		use := ct.FindAttributeUse(name)
		if use == nil || use.Prohibited {
			if ct.AttrWildcard != nil && ct.AttrWildcard.Admits(name.Space) {
				continue
			}
			f.attrViols = append(f.attrViols, Violation{Path: f.path, Msg: fmt.Sprintf("attribute %q is not declared for this element", a.Name.Qualified())})
			continue
		}
		val, err := use.Decl.Type.Parse(a.Value)
		if err != nil {
			f.attrViols = append(f.attrViols, Violation{Path: f.path, Msg: fmt.Sprintf("attribute %q: %v", a.Name.Qualified(), err)})
			continue
		}
		if use.Fixed != nil {
			want, ferr := use.Decl.Type.Parse(*use.Fixed)
			if ferr == nil && !val.Equal(want) {
				f.attrViols = append(f.attrViols, Violation{Path: f.path, Msg: fmt.Sprintf("attribute %q must have the fixed value %q", a.Name.Qualified(), *use.Fixed)})
			}
		}
		if b := use.Decl.Type.PrimitiveBuiltin(); b != nil && (b.Name == "ID" || b.Name == "IDREF" || b.Name == "IDREFS") {
			sr.trackIDs(use.Decl.Type, a.Value, f.path+"/@"+a.Name.Qualified(), &f.attrViols)
		}
	}
	for _, use := range ct.AttributeUses {
		if use.Required && !use.Prohibited {
			missing := true
			for _, s := range seen {
				if s == use.Decl.Name {
					missing = false
					break
				}
			}
			if missing {
				f.attrViols = append(f.attrViols, Violation{Path: f.path, Msg: fmt.Sprintf("required attribute %q is missing", use.Decl.Name.Local)})
			}
		}
	}
	sr.attrSeen = seen[:0]
}

// trackIDs mirrors run.trackIDs against the shared ID state, journaling
// insertions for rollback.
func (sr *streamRun) trackIDs(st *xsd.SimpleType, lexical, path string, viols *[]Violation) {
	if sr.v.opts.SkipIDChecks {
		return
	}
	b := st.PrimitiveBuiltin()
	if b == nil {
		return
	}
	norm := strings.Join(strings.Fields(lexical), " ")
	switch b.Name {
	case "ID":
		if prev, dup := sr.ids[norm]; dup {
			*viols = append(*viols, Violation{Path: path, Msg: fmt.Sprintf("duplicate ID %q (first declared at %s)", norm, prev)})
		} else {
			sr.ids[norm] = path
			sr.idJournal = append(sr.idJournal, norm)
		}
	case "IDREF":
		sr.idrefs = append(sr.idrefs, pendingRef{id: norm, path: path})
	case "IDREFS":
		for _, ref := range strings.Fields(norm) {
			sr.idrefs = append(sr.idrefs, pendingRef{id: ref, path: path})
		}
	}
}

// rollbackTo undoes ID insertions and pending IDREFs recorded after the
// frame's marks — the descendants the DOM validator would never have
// visited.
func (sr *streamRun) rollbackTo(f *frame) {
	for _, id := range sr.idJournal[f.idMark:] {
		delete(sr.ids, id)
	}
	sr.idJournal = sr.idJournal[:f.idMark]
	sr.idrefs = sr.idrefs[:f.refMark]
}

// textNode consumes a character-data or CDATA token. It works on the
// token's zero-copy byte view: whitespace checks and simple-content
// accumulation never materialize a string, so pure scanning stays
// allocation-free. Strings are built only when a violation needs a
// snippet or a binding consumer wants the mixed text.
func (sr *streamRun) textNode(tok *xmlparser.Token, cdata bool) {
	f := sr.top()
	if f == nil {
		return // document-level whitespace or misc
	}
	data := tok.Bytes()
	if !cdata && len(data) == 0 {
		return // dom.Parse drops empty text nodes
	}
	switch f.mode {
	case fmModel:
		if f.mixed {
			if sr.events != nil {
				sr.events.MixedText(tok.Data())
			}
			return
		}
		if cdata {
			f.textViols = append(f.textViols, Violation{Path: f.path, Msg: "character data is not allowed in element-only content"})
		} else if len(bytes.TrimSpace(data)) != 0 {
			f.textViols = append(f.textViols, Violation{Path: f.path, Msg: fmt.Sprintf("character data %q is not allowed in element-only content", snippet(tok.Data()))})
		}
	case fmSimple, fmCSimple:
		f.textBuf = append(f.textBuf, data...)
	case fmCEmpty:
		if !f.failed && (cdata || len(bytes.TrimSpace(data)) != 0) {
			f.failed = true
			f.contentViol = &Violation{Path: f.path, Msg: "character data is not allowed in empty content"}
		}
	case fmNilled:
		if !f.failed {
			f.failed = true
			f.contentViol = &Violation{Path: f.path, Msg: "nilled element must be empty"}
		}
	}
}

func (sr *streamRun) endElement() {
	n := len(sr.frames)
	if n == 0 {
		return
	}
	f := sr.frames[n-1]
	sr.frames = sr.frames[:n-1]
	sr.ns = sr.ns[:f.nsMark]
	sr.deliver(sr.closeFrame(f))
	if f.announced {
		sr.events.CloseElement(f.evVal)
	}
	sr.recycle(f)
}

// deliver routes a closed frame's violations to its parent's buffer, or
// to the result when the root closes.
func (sr *streamRun) deliver(viols []Violation) {
	if p := sr.top(); p != nil {
		p.childViols = append(p.childViols, viols...)
		return
	}
	sr.rootDone = true
	for _, v := range viols {
		sr.emit(v)
	}
}

// closeFrame assembles the frame's violations in the order the DOM
// validator emits them.
func (sr *streamRun) closeFrame(f *frame) []Violation {
	switch f.mode {
	case fmModel:
		if !f.failed {
			if merr := f.run.End(); merr != nil {
				// Premature end: the DOM path reports it against the
				// parent and validates no children.
				f.failed = true
				f.contentViol = &Violation{Path: f.path, Msg: merr.Error()}
				f.childViols = nil
				sr.rollbackTo(f)
			}
		}
		if !f.failed && len(f.attrViols) == 0 && len(f.textViols) == 0 {
			// Hot path: nothing buffered; deliver copies before recycle.
			return f.childViols
		}
		viols := make([]Violation, 0, len(f.attrViols)+len(f.textViols)+1)
		viols = append(viols, f.attrViols...)
		viols = append(viols, f.textViols...)
		if f.failed {
			viols = append(viols, *f.contentViol)
		} else {
			viols = append(viols, f.childViols...)
		}
		return viols
	case fmSimple:
		var viols []Violation
		if f.sawElemChild {
			viols = append(viols, Violation{Path: f.path, Msg: "element content is not allowed in a simple-type element"})
		} else {
			text := string(f.textBuf)
			if f.decl.Fixed != nil && text == "" {
				text = *f.decl.Fixed
			}
			if f.decl.Default != nil && text == "" {
				text = *f.decl.Default
			}
			val, err := f.st.Parse(text)
			if err != nil {
				viols = append(viols, Violation{Path: f.path, Msg: err.Error()})
			} else {
				if f.announced {
					f.evVal = &val
				}
				if f.decl.Fixed != nil {
					want, ferr := f.st.Parse(*f.decl.Fixed)
					if ferr == nil && !val.Equal(want) {
						viols = append(viols, Violation{Path: f.path, Msg: fmt.Sprintf("value %q does not equal the fixed value %q", text, *f.decl.Fixed)})
					}
				}
				sr.trackIDs(f.st, text, f.path, &viols)
			}
		}
		for _, name := range f.plainAttrs {
			viols = append(viols, Violation{Path: f.path, Msg: fmt.Sprintf("attribute %q is not allowed on a simple-type element", name)})
		}
		return viols
	case fmCSimple:
		viols := f.attrViols
		if f.sawElemChild {
			viols = append(viols, Violation{Path: f.path, Msg: "element content is not allowed in simple content"})
		} else {
			text := string(f.textBuf)
			val, err := f.st.Parse(text)
			if err != nil {
				viols = append(viols, Violation{Path: f.path, Msg: err.Error()})
			} else if f.announced {
				f.evVal = &val
			}
			sr.trackIDs(f.st, text, f.path, &viols)
		}
		return viols
	default: // fmCEmpty, fmNilled, fmDead
		viols := f.attrViols
		if f.contentViol != nil {
			viols = append(viols, *f.contentViol)
		}
		return viols
	}
}

// startFallback begins buffering the element's subtree into a private DOM
// fragment for the recursive validator.
func (sr *streamRun) startFallback(f *frame, tok *xmlparser.Token) {
	f.mode = fmFallback
	doc := dom.NewPooledDocument()
	root := doc.CreateElementNS(tok.Name.Space, tok.Name.Qualified())
	for i := range tok.Attrs {
		a := &tok.Attrs[i]
		root.SetAttributeNS(a.Name.Space, a.Name.Qualified(), a.Value)
	}
	// Graft the in-scope namespace bindings onto the buffered root so
	// resolveInstanceQName sees the same environment it would in the full
	// tree. Innermost bindings win; locally declared ones are already set.
	for i := len(sr.ns) - 1; i >= 0; i-- {
		b := sr.ns[i]
		if root.HasAttributeNS(xmlparser.XMLNSNamespace, b.name) {
			continue
		}
		q := "xmlns"
		if b.name != "xmlns" {
			q = "xmlns:" + b.name
		}
		root.SetAttributeNS(xmlparser.XMLNSNamespace, q, b.uri)
	}
	doc.AppendChild(root)
	f.fbDoc = doc
	f.fbRoot = root
	f.fbCur = root
	f.fbDepth = 1
	f.idMark = len(sr.idJournal)
	f.refMark = len(sr.idrefs)
	sr.frames = append(sr.frames, f)
}

// feedFallback appends one token to the buffered subtree, mirroring
// dom.Parse's token-to-node mapping.
func (sr *streamRun) feedFallback(f *frame, tok *xmlparser.Token) {
	doc := f.fbDoc
	switch tok.Kind {
	case xmlparser.KindStartElement:
		e := doc.CreateElementNS(tok.Name.Space, tok.Name.Qualified())
		for i := range tok.Attrs {
			a := &tok.Attrs[i]
			e.SetAttributeNS(a.Name.Space, a.Name.Qualified(), a.Value)
		}
		f.fbCur.AppendChild(e)
		f.fbCur = e
		f.fbDepth++
	case xmlparser.KindEndElement:
		f.fbDepth--
		if f.fbDepth == 0 {
			sr.completeFallback(f)
			return
		}
		f.fbCur = f.fbCur.ParentNode()
	case xmlparser.KindText:
		if tok.Data() == "" {
			return
		}
		f.fbCur.AppendChild(doc.CreateTextNode(tok.Data()))
	case xmlparser.KindCData:
		f.fbCur.AppendChild(doc.CreateCDATASection(tok.Data()))
	case xmlparser.KindComment:
		f.fbCur.AppendChild(doc.CreateComment(tok.Data()))
	case xmlparser.KindProcInst:
		f.fbCur.AppendChild(doc.CreateProcessingInstruction(tok.Target, tok.Data()))
	}
}

// completeFallback validates the buffered subtree with the recursive DOM
// path, sharing the document-wide ID state.
func (sr *streamRun) completeFallback(f *frame) {
	sr.frames = sr.frames[:len(sr.frames)-1]
	sr.ns = sr.ns[:f.nsMark]
	nrun := &run{
		v:   sr.v,
		ids: sr.ids,
		onIDInsert: func(id string) {
			sr.idJournal = append(sr.idJournal, id)
		},
	}
	nrun.element(f.fbRoot, f.decl, f.path)
	sr.idrefs = append(sr.idrefs, nrun.idrefs...)
	sr.deliver(nrun.res.Violations)
	if sr.events != nil {
		sr.events.FallbackElement(f.decl, f.fbRoot, f.wild)
	}
	// The buffered subtree is private to this frame and the recursive run
	// above only keeps strings, so its pooled nodes can be recycled now.
	f.fbDoc.Release()
	f.fbDoc, f.fbRoot, f.fbCur = nil, nil, nil
	sr.recycle(f)
}

// resolveQName replicates resolveInstanceQName against the streaming
// binding stack.
func (sr *streamRun) resolveQName(lexical string) (xsd.QName, error) {
	lexical = strings.TrimSpace(lexical)
	prefix, local := "", lexical
	if i := strings.IndexByte(lexical, ':'); i >= 0 {
		prefix, local = lexical[:i], lexical[i+1:]
	}
	if !xmlparser.IsNCName(local) || (prefix != "" && !xmlparser.IsNCName(prefix)) {
		return xsd.QName{}, fmt.Errorf("bad QName")
	}
	if prefix == "xml" {
		return xsd.QName{Space: xmlparser.XMLNamespace, Local: local}, nil
	}
	key := prefix
	if key == "" {
		key = "xmlns"
	}
	for i := len(sr.ns) - 1; i >= 0; i-- {
		if sr.ns[i].name == key {
			return xsd.QName{Space: sr.ns[i].uri, Local: local}, nil
		}
	}
	if prefix != "" {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q", prefix)
	}
	return xsd.QName{Local: local}, nil
}

// indexedChildPath replicates childPathIndexed for streaming frames.
func (f *frame) indexedChildPath(tag string) string {
	for i := range f.counts {
		if f.counts[i].tag == tag {
			f.counts[i].n++
			return f.path + "/" + tag + "[" + strconv.Itoa(f.counts[i].n) + "]"
		}
	}
	f.counts = append(f.counts, childCount{tag: tag, n: 1})
	return f.path + "/" + tag
}

// finish resolves pending IDREFs, matching run.checkIDRefs.
func (sr *streamRun) finish() {
	for _, pending := range sr.idrefs {
		if _, ok := sr.ids[pending.id]; !ok {
			sr.emit(Violation{Path: pending.path, Msg: fmt.Sprintf("IDREF %q does not match any ID", pending.id)})
		}
	}
}
