package validator

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
)

// TestConcurrentValidation drives one shared Validator from many
// goroutines (run under -race in the tier-1 recipe): the compiled-model
// cache, the schema and the read-only documents are all shared; only the
// per-run state is private.
func TestConcurrentValidation(t *testing.T) {
	v := poValidator(t)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Mix shared-document and private-document runs, plus the
				// invalid path, to cover both outcomes concurrently.
				if res := v.ValidateDocument(doc); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: valid doc rejected: %v", id, res.Err())
					return
				}
				own, perr := dom.ParseString(schemas.PurchaseOrderDoc)
				if perr != nil {
					errs <- perr
					return
				}
				if res := v.ValidateDocument(own); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: private doc rejected: %v", id, res.Err())
					return
				}
				bad, perr := dom.ParseString(`<purchaseOrder orderDate="1999-10-20"><bogus/></purchaseOrder>`)
				if perr != nil {
					errs <- perr
					return
				}
				if res := v.ValidateDocument(bad); res.OK() {
					errs <- fmt.Errorf("goroutine %d: invalid doc accepted", id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestModelCacheCompilesOnce proves the tentpole claim: no matter how many
// concurrent runs exercise the same complex types, each type's content
// model compiles exactly once per Validator.
func TestModelCacheCompilesOnce(t *testing.T) {
	v := poValidator(t)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v.ValidateDocument(doc)
			}
		}()
	}
	wg.Wait()
	first := v.CompiledModels()
	if first == 0 {
		t.Fatal("no content models compiled — cache not exercised")
	}
	// 160 validations of a document with 4 element-only complex types
	// must not have compiled more models than distinct types.
	if first > 8 {
		t.Errorf("compiled %d models for one small document — cache not deduplicating", first)
	}
	v.ValidateDocument(doc)
	if got := v.CompiledModels(); got != first {
		t.Errorf("revalidation recompiled models: %d -> %d", first, got)
	}
}

// TestValidateBatch checks index alignment, mixed outcomes and nil slots.
func TestValidateBatch(t *testing.T) {
	v := poValidator(t)
	good, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := dom.ParseString(`<purchaseOrder orderDate="1999-10-20"><bogus/></purchaseOrder>`)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*dom.Document, 0, 40)
	for i := 0; i < 20; i++ {
		docs = append(docs, good, bad)
	}
	docs[7] = nil
	results := v.ValidateBatch(docs)
	if len(results) != len(docs) {
		t.Fatalf("got %d results for %d docs", len(results), len(docs))
	}
	for i, res := range results {
		switch {
		case res == nil:
			t.Fatalf("result %d is nil", i)
		case i == 7:
			wantViolation(t, res, "nil document")
		case i%2 == 0 && !res.OK():
			t.Errorf("doc %d (valid) rejected: %v", i, res.Err())
		case i%2 == 1 && res.OK():
			t.Errorf("doc %d (invalid) accepted", i)
		}
	}
	if results, _ := v.ValidateBatchContext(context.Background(), nil); results != nil {
		t.Errorf("empty batch should return nil, got %v", results)
	}
}

// TestValidateBatchCancellation checks that a cancelled context stops the
// feed: the call returns ctx.Err() and leaves unprocessed slots nil.
func TestValidateBatchCancellation(t *testing.T) {
	v := poValidator(t)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*dom.Document, 500)
	for i := range docs {
		docs[i] = doc
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	results, cerr := v.ValidateBatchContext(ctx, docs)
	if cerr == nil {
		t.Fatal("expected a context error from a cancelled batch")
	}
	if len(results) != len(docs) {
		t.Fatalf("result slice must stay index-aligned: %d vs %d", len(results), len(docs))
	}
	done := 0
	for _, res := range results {
		if res != nil {
			done++
		}
	}
	if done == len(docs) {
		t.Error("cancelled batch still processed every document")
	}
}
