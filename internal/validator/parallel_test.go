package validator

// Seam-correctness tests for intra-document parallel validation: every
// document-global effect that crosses a depth-1 subtree boundary (IDs,
// IDREFs, violation ordering, the violation cap, xsi:type resolution,
// identity constraints) must come out byte-identical to the sequential
// walk. These are the adversarial hand-picked cases; the broad
// differential sweep lives in the repo-root E15 suite.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// seamSchema: a root with unbounded depth-1 node subtrees carrying IDs,
// IDREFs, simple-typed leaves (violation fodder), recursion for depth,
// and a derived type for xsi:type at the seam.
const seamSchema = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="doc">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="node" type="NodeType" minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence>
      <xsd:attribute name="rootId" type="xsd:ID"/>
    </xsd:complexType>
  </xsd:element>
  <xsd:complexType name="NodeType">
    <xsd:sequence>
      <xsd:element name="v" type="xsd:int" minOccurs="0" maxOccurs="unbounded"/>
      <xsd:element name="sub" type="NodeType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="id" type="xsd:ID"/>
    <xsd:attribute name="ref" type="xsd:IDREF"/>
  </xsd:complexType>
  <xsd:complexType name="ExtNodeType">
    <xsd:complexContent>
      <xsd:extension base="NodeType">
        <xsd:attribute name="extra" type="xsd:boolean"/>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>
</xsd:schema>`

func seamValidator(t *testing.T) *Validator {
	t.Helper()
	s, err := xsd.ParseString(seamSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(s, nil)
}

// forceTinySplits lowers the fan-out threshold so the seam machinery
// engages on hand-sized documents (two siblings are enough to split).
func forceTinySplits(t *testing.T) {
	t.Helper()
	old := ParallelMinFanout
	ParallelMinFanout = 2
	t.Cleanup(func() { ParallelMinFanout = old })
}

// assertParallelParity validates doc sequentially and in parallel at
// several worker counts, demanding byte-identical results throughout.
func assertParallelParity(t *testing.T, v *Validator, label, src string) {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	want := v.ValidateDocument(doc)
	for _, w := range []int{0, 2, 3, 8, 64} {
		got := v.ParallelValidate(doc, w)
		if !reflect.DeepEqual(normViols(want.Violations), normViols(got.Violations)) {
			t.Errorf("%s: workers=%d diverged:\n  seq: %v\n  par: %v", label, w, want.Violations, got.Violations)
		}
	}
}

func normViols(v []Violation) []Violation {
	if len(v) == 0 {
		return nil
	}
	return v
}

func TestParallelSeamCorrectness(t *testing.T) {
	forceTinySplits(t)
	v := seamValidator(t)
	cases := map[string]string{
		"all valid": `<doc><node id="a"><v>1</v></node><node id="b" ref="a"><v>2</v></node><node ref="b"/></doc>`,

		// Violations on both sides of a seam: last child of one subtree
		// and first child of the next are both invalid; order must hold.
		"violation at seam": `<doc><node><v>1</v><v>bad1</v></node><node><v>bad2</v><v>2</v></node></doc>`,

		// ID defined in one subtree, referenced from another — both
		// directions, including a dangling reference.
		"forward idref":  `<doc><node id="x"/><node ref="x"/></doc>`,
		"backward idref": `<doc><node ref="y"/><node id="y"/></doc>`,
		"dangling idref": `<doc><node id="x"/><node ref="ghost"/><node ref="x"/></doc>`,
		"deep cross-subtree idref": `<doc>
		  <node><sub><sub id="deep"/></sub></node>
		  <node><sub ref="deep"/></node>
		</doc>`,

		// Cross-seam duplicate: the violation must be spliced into the
		// second subtree's sequence at exactly the sequential position,
		// citing the first subtree's path.
		"duplicate id across subtrees": `<doc><node id="d"/><node><v>bad</v><sub id="d"/><v>alsobad</v></node></doc>`,
		// Triple duplicate across three subtrees: two spliced violations,
		// both citing the globally first declaration.
		"triple duplicate": `<doc><node id="t"/><node id="t"/><node id="t"/></doc>`,
		// Duplicate inside one subtree whose globally-first declaration is
		// in an earlier subtree: the local message must be rewritten to
		// cite the global first path.
		"local dup with earlier global": `<doc><node id="g"/><node><sub id="g"/><sub id="g"/></node></doc>`,
		// Root attribute declares the ID before any subtree runs.
		"root attr id first": `<doc rootId="r"><node id="r"/><node ref="r"/></doc>`,
		// ID value whitespace normalization must survive the journal.
		"normalized ids": `<doc><node id=" n  1 "/><node id="n 1"/></doc>`,

		// xsi:type at depth 1: type resolution happens inside the worker.
		"xsi:type at seam": `<doc xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
		  <node xsi:type="ExtNodeType" extra="true"><v>1</v></node>
		  <node xsi:type="ExtNodeType" extra="notbool"/>
		  <node xsi:type="NoSuchType"/>
		</doc>`,

		// Content-model failure at depth 1 (sub before v violates the
		// sequence) next to clean subtrees.
		"model failure in one subtree": `<doc><node><v>1</v></node><node><sub/><v>2</v></node><node><v>3</v></node></doc>`,
	}
	for label, src := range cases {
		assertParallelParity(t, v, label, src)
	}
}

// TestParallelIdentityConstraints puts key/keyref/unique constraints on
// the depth-1 subtrees (and via .//sku on the whole document): the
// constraint walk runs inside workers for children and in the parent for
// the root, and must not perturb verdicts.
func TestParallelIdentityConstraints(t *testing.T) {
	const src = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	  <xsd:complexType name="ItemType">
	    <xsd:sequence><xsd:element name="sku" type="xsd:string" minOccurs="0"/></xsd:sequence>
	    <xsd:attribute name="partNum" type="xsd:string"/>
	  </xsd:complexType>
	  <xsd:complexType name="RefType">
	    <xsd:attribute name="part" type="xsd:string" use="required"/>
	  </xsd:complexType>
	  <xsd:complexType name="OrderType">
	    <xsd:sequence>
	      <xsd:element name="item" type="ItemType" minOccurs="0" maxOccurs="unbounded"/>
	      <xsd:element name="ref" type="RefType" minOccurs="0" maxOccurs="unbounded"/>
	    </xsd:sequence>
	  </xsd:complexType>
	  <xsd:element name="orders">
	    <xsd:complexType>
	      <xsd:sequence>
	        <xsd:element ref="order" minOccurs="0" maxOccurs="unbounded"/>
	      </xsd:sequence>
	    </xsd:complexType>
	    <xsd:unique name="allSkus">
	      <xsd:selector xpath=".//item"/>
	      <xsd:field xpath="sku"/>
	    </xsd:unique>
	  </xsd:element>
	  <xsd:element name="order" type="OrderType">
	    <xsd:key name="pk">
	      <xsd:selector xpath="item"/>
	      <xsd:field xpath="@partNum"/>
	    </xsd:key>
	    <xsd:keyref name="pref" refer="pk">
	      <xsd:selector xpath="ref"/>
	      <xsd:field xpath="@part"/>
	    </xsd:keyref>
	  </xsd:element>
	</xsd:schema>`
	forceTinySplits(t)
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := New(s, nil)
	cases := map[string]string{
		"all constraints satisfied": `<orders>
		  <order><item partNum="1"><sku>a</sku></item><ref part="1"/></order>
		  <order><item partNum="1"><sku>b</sku></item><ref part="1"/></order>
		</orders>`,
		"keyref broken in second subtree": `<orders>
		  <order><item partNum="1"><sku>a</sku></item></order>
		  <order><ref part="missing"/></order>
		</orders>`,
		"duplicate key inside one subtree": `<orders>
		  <order><item partNum="1"/><item partNum="1"/></order>
		  <order><item partNum="1"/></order>
		</orders>`,
		"document-wide unique broken across subtrees": `<orders>
		  <order><item partNum="1"><sku>same</sku></item></order>
		  <order><item partNum="2"><sku>same</sku></item></order>
		</orders>`,
	}
	for label, doc := range cases {
		assertParallelParity(t, v, label, doc)
	}
}

// TestParallelViolationCapFallback drives the joined total past
// maxViolations: parallel must discard the piecewise result and rerun
// sequentially, so the capped prefix is identical.
func TestParallelViolationCapFallback(t *testing.T) {
	v := seamValidator(t)
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < maxViolations+50; i++ {
		fmt.Fprintf(&sb, `<node><v>bad%d</v></node>`, i)
	}
	sb.WriteString("</doc>")
	doc, err := dom.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	want := v.ValidateDocument(doc)
	if len(want.Violations) != maxViolations {
		t.Fatalf("setup: sequential produced %d violations, want cap %d", len(want.Violations), maxViolations)
	}
	got := v.ParallelValidate(doc, 8)
	if !reflect.DeepEqual(want.Violations, got.Violations) {
		t.Fatalf("capped runs diverged:\n  seq tail: %v\n  par tail: %v",
			want.Violations[maxViolations-3:], got.Violations[len(got.Violations)-3:])
	}
}

// TestParallelDegenerateShapes covers the shapes that must bypass the
// worker pool: no root, unknown root, single child, simple root, an
// observer installed, and worker counts at and below one.
func TestParallelDegenerateShapes(t *testing.T) {
	v := seamValidator(t)
	for label, src := range map[string]string{
		"empty root":   `<doc/>`,
		"single child": `<doc><node id="a" ref="a"><v>x</v></node></doc>`,
		"unknown root": `<wrong/>`,
	} {
		assertParallelParity(t, v, label, src)
	}
	// ElementObserver forces the sequential walk (callback ordering).
	visited := 0
	ov := New(mustSchema(t, seamSchema), &Options{ElementObserver: func(*xsd.ElementDecl) { visited++ }})
	doc, _ := dom.ParseString(`<doc><node/><node/></doc>`)
	res := ov.ParallelValidate(doc, 8)
	if !res.OK() || visited == 0 {
		t.Fatalf("observer run: ok=%v visited=%d", res.OK(), visited)
	}
}

func mustSchema(t *testing.T, src string) *xsd.Schema {
	t.Helper()
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelWideDocument is a smoke-scale run: hundreds of depth-1
// subtrees with interleaved cross-subtree IDs and scattered violations,
// checked at several worker counts (run under -race in CI).
func TestParallelWideDocument(t *testing.T) {
	v := seamValidator(t)
	var sb strings.Builder
	sb.WriteString("<doc>")
	for i := 0; i < 400; i++ {
		switch i % 5 {
		case 0:
			fmt.Fprintf(&sb, `<node id="id%d"><v>%d</v></node>`, i, i)
		case 1:
			fmt.Fprintf(&sb, `<node ref="id%d"><v>%d</v></node>`, i-1, i)
		case 2:
			fmt.Fprintf(&sb, `<node><v>not-an-int-%d</v></node>`, i)
		case 3:
			fmt.Fprintf(&sb, `<node id="id%d"/>`, i-3) // duplicate of case 0
		default:
			fmt.Fprintf(&sb, `<node><sub id="s%d"><sub ref="s%d"/></sub></node>`, i, i)
		}
	}
	sb.WriteString("</doc>")
	assertParallelParity(t, v, "wide document", sb.String())
}
