package validator_test

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// exampleXSD is the small schema shared by the package examples.
const exampleXSD = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="note" type="NoteType"/>
  <xsd:complexType name="NoteType">
    <xsd:sequence>
      <xsd:element name="to" type="xsd:string"/>
      <xsd:element name="body" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

// ExampleNew builds one Validator and reuses it: the second run hits the
// compiled content-model cache instead of recompiling the schema's
// automata.
func ExampleNew() {
	schema, err := xsd.ParseString(exampleXSD, nil)
	if err != nil {
		panic(err)
	}
	v := validator.New(schema, nil)
	doc, _ := dom.ParseString(`<note><to>Ada</to><body>hi</body></note>`)
	fmt.Println("first run ok:", v.ValidateDocument(doc).OK())
	fmt.Println("second run ok:", v.ValidateDocument(doc).OK())
	fmt.Println("content models compiled:", v.CompiledModels())
	// Output:
	// first run ok: true
	// second run ok: true
	// content models compiled: 1
}

// ExampleValidator_ValidateDocument shows the violation report for an
// invalid document.
func ExampleValidator_ValidateDocument() {
	schema, err := xsd.ParseString(exampleXSD, nil)
	if err != nil {
		panic(err)
	}
	v := validator.New(schema, nil)
	doc, _ := dom.ParseString(`<note><body>hi</body></note>`)
	res := v.ValidateDocument(doc)
	fmt.Println("ok:", res.OK())
	for _, viol := range res.Violations {
		fmt.Println(viol.Error())
	}
	// Output:
	// ok: false
	// /note/body: unexpected element body at position 0; expected to
}

// ExampleValidator_ValidateBatch validates several documents through the
// worker pool; results are index-aligned with the input slice.
func ExampleValidator_ValidateBatch() {
	schema, err := xsd.ParseString(exampleXSD, nil)
	if err != nil {
		panic(err)
	}
	v := validator.New(schema, nil)
	sources := []string{
		`<note><to>Ada</to><body>hi</body></note>`,
		`<note><body>out of order</body><to>Ada</to></note>`,
		`<note><to>Grace</to><body>hello</body></note>`,
	}
	docs := make([]*dom.Document, len(sources))
	for i, src := range sources {
		docs[i], _ = dom.ParseString(src)
	}
	for i, res := range v.ValidateBatch(docs) {
		fmt.Printf("doc %d ok: %v\n", i, res.OK())
	}
	// Output:
	// doc 0 ok: true
	// doc 1 ok: false
	// doc 2 ok: true
}
