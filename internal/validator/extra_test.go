package validator

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/xsd"
)

// TestViolationCap: error collection stops at the cap instead of flooding.
func TestViolationCap(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="L">
    <xsd:sequence>
      <xsd:element name="n" type="xsd:int" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="list" type="L"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	var sb strings.Builder
	sb.WriteString("<list>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<n>not-a-number</n>")
	}
	sb.WriteString("</list>")
	doc, err := dom.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	res := New(s, nil).ValidateDocument(doc)
	if res.OK() {
		t.Fatal("expected violations")
	}
	if len(res.Violations) > maxViolations {
		t.Errorf("violations exceed the cap: %d", len(res.Violations))
	}
}

// TestWhitespaceOnlyTextAllowed: ignorable whitespace between children of
// element-only content is fine (the pretty-printed Fig. 1 relies on it).
func TestWhitespaceOnlyTextAllowed(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="r" type="T"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	doc, _ := dom.ParseString("<r>\n\t  <x>v</x>\n</r>")
	if res := New(s, nil).ValidateDocument(doc); !res.OK() {
		t.Errorf("ignorable whitespace flagged: %v", res.Err())
	}
}

// TestCommentsAndPIsIgnoredByValidator: non-element, non-text nodes never
// affect validity.
func TestCommentsAndPIsIgnored(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="r" type="T"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	doc, _ := dom.ParseString(`<r><!--c--><?pi d?><x>v</x><!--t--></r>`)
	if res := New(s, nil).ValidateDocument(doc); !res.OK() {
		t.Errorf("comments/PIs flagged: %v", res.Err())
	}
}

// TestNamespacedValidation: elements are matched by {namespace}local.
func TestNamespacedValidation(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:t="urn:t" targetNamespace="urn:t" elementFormDefault="qualified">
  <xsd:complexType name="T">
    <xsd:sequence><xsd:element name="x" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="r" type="t:T"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	v := New(s, nil)
	good, _ := dom.ParseString(`<r xmlns="urn:t"><x>v</x></r>`)
	if res := v.ValidateDocument(good); !res.OK() {
		t.Errorf("qualified doc: %v", res.Err())
	}
	// Unqualified child must fail: the schema requires {urn:t}x.
	bad, _ := dom.ParseString(`<r xmlns="urn:t"><x xmlns="">v</x></r>`)
	if res := v.ValidateDocument(bad); res.OK() {
		t.Error("unqualified child accepted")
	}
	// Wrong root namespace has no declaration at all.
	wrong, _ := dom.ParseString(`<r><x>v</x></r>`)
	if res := v.ValidateDocument(wrong); res.OK() {
		t.Error("no-namespace root accepted")
	}
}

// TestDeepRecursion: a deeply recursive valid document validates without
// stack trouble.
func TestDeepRecursion(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Nest">
    <xsd:sequence><xsd:element name="nest" type="Nest" minOccurs="0"/></xsd:sequence>
  </xsd:complexType>
  <xsd:element name="nest" type="Nest"/>
</xsd:schema>`
	s, _ := xsd.ParseString(src, nil)
	depth := 3000
	doc, err := dom.ParseString(strings.Repeat("<nest>", depth) + strings.Repeat("</nest>", depth))
	if err != nil {
		t.Fatal(err)
	}
	if res := New(s, nil).ValidateDocument(doc); !res.OK() {
		t.Errorf("deep recursion: %v", res.Err())
	}
}
