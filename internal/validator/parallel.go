package validator

// Intra-document parallel validation.
//
// A multi-MB document is dominated by the subtree walks under its
// depth-1 children, and those walks are independent except for three
// document-global concerns: the violation list (ordered), the ID map
// (first declaration wins, duplicates cite it) and the IDREF worklist
// (resolved against the whole document). Following the fragment-typing
// argument of Abiteboul et al.'s Distributed XML Design — a subtree can
// be validated against its inferred type in isolation, with only a
// bounded interface joined at the seam — ParallelValidate fans sibling
// subtrees out to a worker pool running the ordinary cached-DFA walk. The
// walk descends sequentially until it reaches a level with enough fan-out
// to feed the pool (ParallelMinFanout siblings — the root's depth-1
// children in a wide document, or e.g. the 30k <item> children of
// <items> in a deep purchase order), splits that level into contiguous
// chunks, and joins the three global concerns at the seams:
//
//   - violations: each subtree's violations are contiguous in document
//     order, so the join is concatenation in child order;
//   - IDs: each sub-run journals its ID events (insertions and local
//     duplicates) in subtree order with the violation index they map to.
//     The join replays the journals in child order against the global
//     map: an insertion colliding with an earlier subtree's ID becomes a
//     duplicate violation spliced in at the journaled index, and local
//     duplicate messages are rewritten to cite the globally first
//     declaration — exactly what the sequential walk would have said;
//   - IDREFs: pending references concatenate in child order and resolve
//     against the joined map, preserving emission order.
//
// One sequential behavior cannot be reproduced piecewise: the walk stops
// descending once the violation cap (maxViolations) is reached, so IDs
// and violations past the cap depend on global order. When the joined
// result reaches the cap, ParallelValidate discards it and reruns the
// plain sequential walk — correctness by construction on the (rare,
// already-pathological) documents that hit the cap.
//
// The verdict is byte-identical to ValidateDocument — same violations,
// same order, same paths, same message text — enforced by the
// differential suite (TestParallelMatchesSequential) and the fuzzer
// (FuzzParallelValidate).

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/contentmodel"
	"repro/internal/dom"
	"repro/internal/xsd"
)

// idEvent is one journaled ID occurrence inside a parallel sub-run.
type idEvent struct {
	id   string // whitespace-normalized ID value
	path string // document path of this occurrence
	// vioIdx is len(res.Violations) at event time: where a spliced-in
	// duplicate violation belongs, or where the local duplicate landed.
	vioIdx int
	// dup marks a duplicate within the sub-run (a violation was emitted
	// citing the sub-run's first declaration; the join rewrites it).
	dup bool
}

// ParallelValidate validates like ValidateDocument, splitting the work at
// sibling-subtree boundaries across a worker pool (see the package-level
// split discussion above). workers <= 0 selects runtime.GOMAXPROCS(0);
// 1 degenerates to the sequential walk. The result is byte-identical to
// ValidateDocument's.
//
// Parallelism pays for itself on large documents with several depth-1
// children; for small documents the sequential walk is faster (xsdserved
// applies a size threshold for exactly this reason).
func (v *Validator) ParallelValidate(doc *dom.Document, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || v.opts.ElementObserver != nil {
		// Observer callbacks are ordering-sensitive instrumentation;
		// keep them on the deterministic sequential walk.
		return v.ValidateDocument(doc)
	}
	run := &run{v: v, ids: map[string]string{}, parWorkers: workers}
	root := doc.DocumentElement()
	if root == nil {
		run.violate("/", "document has no root element")
		return &run.res
	}
	name := xsd.QName{Space: root.NamespaceURI(), Local: root.LocalName()}
	decl, ok := v.schema.LookupElement(name)
	if !ok {
		run.violate("/"+root.TagName(), fmt.Sprintf("no global declaration for root element %s", name))
		return &run.res
	}
	run.element(root, decl, "/"+root.TagName())
	run.checkIDRefs()
	if len(run.res.Violations) >= maxViolations {
		// The sequential walk stops descending at the violation cap, so
		// everything past it depends on global order; rerun sequentially.
		return v.ValidateDocument(doc)
	}
	return &run.res
}

// ParallelMinFanout is the child count below which a level is walked
// sequentially (with the split deferred to deeper levels): fan-out and
// join overhead only pay for themselves when there are enough sibling
// subtrees to spread. A variable so the seam tests can force tiny splits.
var ParallelMinFanout = 16

// parallelChildren fans one level's already-matched children out to
// workers in contiguous chunks (document order within a chunk, chunks
// joined in order). It reports whether it handled the children; false
// means the caller should fall through to the sequential loop.
func (r *run) parallelChildren(children []*dom.Element, leaves []*contentmodel.Leaf, path string, workers int) bool {
	if len(children) < 2 || len(r.res.Violations) >= maxViolations {
		return false
	}
	// Child paths are order-dependent (positional predicates count per
	// tag name); compute them up front, sequentially.
	counts := map[string]int{}
	cpaths := make([]string, len(children))
	for i, child := range children {
		cpaths[i] = childPathIndexed(path, child, counts)
	}
	// A few chunks per worker so an expensive subtree doesn't leave the
	// other workers idle at the end of the level.
	chunk := (len(children) + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	nchunks := (len(children) + chunk - 1) / chunk
	if workers > nchunks {
		workers = nchunks
	}
	subs := make([]*run, nchunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				sub := &run{v: r.v, ids: map[string]string{}, journaling: true}
				subs[c] = sub
				hi := (c + 1) * chunk
				if hi > len(children) {
					hi = len(children)
				}
				for i := c * chunk; i < hi; i++ {
					child := children[i]
					switch data := leaves[i].Data.(type) {
					case *xsd.ElementDecl:
						resolved, err := r.v.schema.ResolveChild(data, xsd.QName{Space: child.NamespaceURI(), Local: child.LocalName()})
						if err != nil {
							sub.violate(cpaths[i], err.Error())
							continue
						}
						sub.element(child, resolved, cpaths[i])
					case *contentmodel.Wildcard:
						// Lax wildcard processing, as in the sequential walk.
						name := xsd.QName{Space: child.NamespaceURI(), Local: child.LocalName()}
						if gdecl, ok := r.v.schema.LookupElement(name); ok {
							sub.element(child, gdecl, cpaths[i])
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, sub := range subs {
		r.joinSubRun(sub)
	}
	return true
}

// joinSubRun merges one child sub-run into the parent in document order,
// replaying its ID journal against the global map.
func (r *run) joinSubRun(sub *run) {
	viols := sub.res.Violations
	inserted := 0
	for _, ev := range sub.journal {
		if ev.dup {
			// A duplicate within the subtree cited the subtree's first
			// declaration; the globally first one may be elsewhere.
			if idx := ev.vioIdx + inserted; idx < len(viols) {
				viols[idx].Msg = fmt.Sprintf("duplicate ID %q (first declared at %s)", ev.id, r.ids[ev.id])
			}
			continue
		}
		if first, dup := r.ids[ev.id]; dup {
			// Cross-seam duplicate: sequentially this insertion would
			// have been a violation at exactly this point.
			nv := Violation{Path: ev.path, Msg: fmt.Sprintf("duplicate ID %q (first declared at %s)", ev.id, first)}
			idx := ev.vioIdx + inserted
			viols = append(viols, Violation{})
			copy(viols[idx+1:], viols[idx:])
			viols[idx] = nv
			inserted++
		} else {
			r.ids[ev.id] = ev.path
		}
	}
	// Append without the violate() cap: the caller detects cap overflow
	// on the joined total and falls back to the sequential walk.
	r.res.Violations = append(r.res.Violations, viols...)
	r.idrefs = append(r.idrefs, sub.idrefs...)
}

// ParallelValidateBytes parses and validates in one step like
// ValidateBytes, using the parallel walk for the validation phase.
func ParallelValidateBytes(schema *xsd.Schema, src []byte, workers int) (*dom.Document, *Result) {
	doc, err := dom.Parse(src)
	if err != nil {
		return nil, &Result{Violations: []Violation{{Path: "/", Msg: err.Error()}}}
	}
	return doc, New(schema, nil).ParallelValidate(doc, workers)
}
