package validator

import (
	"repro/internal/dom"
	"repro/internal/xsd"
)

// This file is the runtime support surface for ahead-of-time generated
// validators (internal/codegen's validator back end). A generated package
// compiles each content model and facet chain to straight-line Go, but it
// still shares one per-run state value with the interpreted walk: the
// violation list, the ID/IDREF tables, and the interpreted entry points it
// delegates cold paths to (xsi:type substitutions, identity constraints,
// declarations pruned out of the generated code). Sharing the run state is
// what makes delegation seamless — a subtree handed to the interpreter
// appends to the same capped violation list and the same ID table, so the
// combined verdict is byte-identical to a fully interpreted pass.

// Sink is the per-run state handle driven by generated validator code.
// Create one per document with NewSink; it is single-goroutine, like the
// interpreted run it wraps.
type Sink struct {
	r run
}

// NewSink begins a generated validation run backed by v's schema, options
// and compiled-model cache.
func NewSink(v *Validator) *Sink {
	return &Sink{r: run{v: v, ids: map[string]string{}}}
}

// Violate records one violation (capped like the interpreted walk).
func (s *Sink) Violate(path, msg string) { s.r.violate(path, msg) }

// Full reports whether the violation cap is reached; generated element
// code returns early on a full sink exactly where the interpreter would.
func (s *Sink) Full() bool { return len(s.r.res.Violations) >= maxViolations }

// Element validates a subtree on the interpreted walk. Generated code
// delegates here for xsi:type substitutions and pruned declarations.
func (s *Sink) Element(el *dom.Element, decl *xsd.ElementDecl, path string) {
	s.r.element(el, decl, path)
}

// ElementContent validates children against ct's content model on the
// interpreted walk — the fallback when a model was too complex to emit.
func (s *Sink) ElementContent(el *dom.Element, ct *xsd.ComplexType, path string) {
	s.r.elementContent(el, ct, path)
}

// IdentityConstraints evaluates decl's key/keyref/unique constraints.
func (s *Sink) IdentityConstraints(el *dom.Element, decl *xsd.ElementDecl, path string) {
	s.r.checkIdentityConstraints(el, decl, path)
}

// TrackID records an ID value (uniqueness-checked); TrackIDRef and
// TrackIDRefs record pending references. All three are no-ops when the
// run's Options.SkipIDChecks is set, like the interpreted walk.
func (s *Sink) TrackID(lexical, path string) {
	if s.r.v.opts.SkipIDChecks {
		return
	}
	s.r.trackID(lexical, path)
}

// TrackIDRef records one pending IDREF.
func (s *Sink) TrackIDRef(lexical, path string) {
	if s.r.v.opts.SkipIDChecks {
		return
	}
	s.r.trackIDRef(lexical, path)
}

// TrackIDRefs records the whitespace-separated references of an IDREFS
// value.
func (s *Sink) TrackIDRefs(lexical, path string) {
	if s.r.v.opts.SkipIDChecks {
		return
	}
	s.r.trackIDRefs(lexical, path)
}

// CheckIDRefs resolves collected IDREFs against seen IDs (document end).
func (s *Sink) CheckIDRefs() { s.r.checkIDRefs() }

// Result returns the run's verdict. The Sink retains the Result; callers
// must not validate another document through the same Sink.
func (s *Sink) Result() *Result { return &s.r.res }

// IsMetaAttr reports whether an attribute is namespace/xsi/xml machinery
// that validation ignores.
func IsMetaAttr(a *dom.Attr) bool { return isMetaAttr(a) }

// ChildPath appends a child step to a path, as content-model match errors
// locate the offending child.
func ChildPath(path string, child *dom.Element) string { return childPath(path, child) }

// ChildPathIndexed appends a child step with the 1-based positional
// predicate the interpreted walk uses for repeated siblings.
func ChildPathIndexed(path string, child *dom.Element, counts map[string]int) string {
	return childPathIndexed(path, child, counts)
}

// Snippet truncates character data for error messages.
func Snippet(s string) string { return snippet(s) }
