package validator

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
)

// streamDiff validates src through both paths of the same Validator and
// asserts identical results.
func streamDiff(t *testing.T, v *Validator, label, src string) {
	t.Helper()
	var domRes *Result
	if doc, err := dom.ParseString(src); err != nil {
		domRes = &Result{Violations: []Violation{{Path: "/", Msg: err.Error()}}}
	} else {
		domRes = v.ValidateDocument(doc)
	}
	streamRes := v.Stream().ValidateBytes([]byte(src))
	if len(domRes.Violations) != len(streamRes.Violations) {
		t.Fatalf("%s: dom %d violations, stream %d\n  dom: %v\n  stream: %v",
			label, len(domRes.Violations), len(streamRes.Violations), domRes.Violations, streamRes.Violations)
	}
	for i := range domRes.Violations {
		if domRes.Violations[i] != streamRes.Violations[i] {
			t.Errorf("%s: violation %d diverged:\n  dom:    %v\n  stream: %v",
				label, i, domRes.Violations[i], streamRes.Violations[i])
		}
	}
}

func TestStreamValidatesReader(t *testing.T) {
	v := poValidator(t)
	res := v.Stream().ValidateReader(strings.NewReader(schemas.PurchaseOrderDoc))
	if !res.OK() {
		t.Fatalf("valid document rejected by streaming path: %v", res.Err())
	}
}

func TestStreamRejectsWithDOMMessages(t *testing.T) {
	v := poValidator(t)
	res := v.Stream().ValidateBytes([]byte(
		`<purchaseOrder><shipTo country="US"><street>s</street><name>n</name><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`))
	if res.OK() {
		t.Fatal("out-of-order children accepted")
	}
	if got := res.Violations[0].Path; got != "/purchaseOrder/shipTo/street" {
		t.Errorf("violation path = %q, want the failing child's path", got)
	}
}

// TestStreamIdentityFallback proves identity-constrained subtrees degrade
// to the DOM path with the same verdicts: the streaming validator buffers
// the <order> subtree (its declaration carries key/keyref/unique) and runs
// the recursive validator over it.
func TestStreamIdentityFallback(t *testing.T) {
	v := icValidator(t)
	for label, src := range map[string]string{
		"valid keys":      `<order><item partNum="100-AA"><sku>s1</sku></item><ref part="100-AA"/></order>`,
		"duplicate key":   `<order><item partNum="100-AA"/><item partNum="100-AA"/></order>`,
		"dangling keyref": `<order><item partNum="100-AA"/><ref part="999-ZZ"/></order>`,
		"missing field":   `<order><item/></order>`,
	} {
		streamDiff(t, v, label, src)
	}
	res := v.Stream().ValidateBytes([]byte(`<order><item partNum="1"/><item partNum="1"/></order>`))
	if res.OK() || !strings.Contains(res.Err().Error(), "duplicate value") {
		t.Errorf("identity constraint not enforced through the fallback: %v", res.Err())
	}
}

// TestStreamConcurrent drives one shared Validator's streaming path from
// many goroutines (run under -race in the tier-1 extended recipe). The
// compiled-model cache is the only shared mutable state; every run's
// frames, ID maps and results are private.
func TestStreamConcurrent(t *testing.T) {
	v := poValidator(t)
	sv := v.Stream()
	valid := []byte(schemas.PurchaseOrderDoc)
	invalid := []byte(`<purchaseOrder orderDate="1999-10-20"><bogus/></purchaseOrder>`)
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if res := sv.ValidateBytes(valid); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: valid doc rejected: %v", id, res.Err())
					return
				}
				if res := sv.ValidateReader(strings.NewReader(schemas.PurchaseOrderDoc)); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: valid doc rejected via reader: %v", id, res.Err())
					return
				}
				if res := sv.ValidateBytes(invalid); res.OK() {
					errs <- fmt.Errorf("goroutine %d: invalid doc accepted", id)
					return
				}
				// Interleave DOM-path runs on the same Validator: both
				// paths share the model cache.
				doc, perr := dom.ParseString(schemas.PurchaseOrderDoc)
				if perr != nil {
					errs <- perr
					return
				}
				if res := v.ValidateDocument(doc); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: DOM path rejected valid doc: %v", id, res.Err())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Concurrent streaming must not have defeated the cache: the document
	// exercises a handful of complex types, each compiled exactly once.
	if n := v.CompiledModels(); n == 0 || n > 8 {
		t.Errorf("compiled %d models across concurrent stream+DOM runs — cache not shared", n)
	}
}
