package validator

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
)

// streamDiff validates src through both paths of the same Validator and
// asserts identical results.
func streamDiff(t *testing.T, v *Validator, label, src string) {
	t.Helper()
	var domRes *Result
	if doc, err := dom.ParseString(src); err != nil {
		domRes = &Result{Violations: []Violation{{Path: "/", Msg: err.Error()}}}
	} else {
		domRes = v.ValidateDocument(doc)
	}
	streamRes := v.Stream().ValidateBytes([]byte(src))
	if len(domRes.Violations) != len(streamRes.Violations) {
		t.Fatalf("%s: dom %d violations, stream %d\n  dom: %v\n  stream: %v",
			label, len(domRes.Violations), len(streamRes.Violations), domRes.Violations, streamRes.Violations)
	}
	for i := range domRes.Violations {
		if domRes.Violations[i] != streamRes.Violations[i] {
			t.Errorf("%s: violation %d diverged:\n  dom:    %v\n  stream: %v",
				label, i, domRes.Violations[i], streamRes.Violations[i])
		}
	}
}

func TestStreamValidatesReader(t *testing.T) {
	v := poValidator(t)
	res := v.Stream().ValidateReader(strings.NewReader(schemas.PurchaseOrderDoc))
	if !res.OK() {
		t.Fatalf("valid document rejected by streaming path: %v", res.Err())
	}
}

func TestStreamRejectsWithDOMMessages(t *testing.T) {
	v := poValidator(t)
	res := v.Stream().ValidateBytes([]byte(
		`<purchaseOrder><shipTo country="US"><street>s</street><name>n</name><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`))
	if res.OK() {
		t.Fatal("out-of-order children accepted")
	}
	if got := res.Violations[0].Path; got != "/purchaseOrder/shipTo/street" {
		t.Errorf("violation path = %q, want the failing child's path", got)
	}
}

// TestStreamIdentityFallback proves identity-constrained subtrees degrade
// to the DOM path with the same verdicts: the streaming validator buffers
// the <order> subtree (its declaration carries key/keyref/unique) and runs
// the recursive validator over it.
func TestStreamIdentityFallback(t *testing.T) {
	v := icValidator(t)
	for label, src := range map[string]string{
		"valid keys":      `<order><item partNum="100-AA"><sku>s1</sku></item><ref part="100-AA"/></order>`,
		"duplicate key":   `<order><item partNum="100-AA"/><item partNum="100-AA"/></order>`,
		"dangling keyref": `<order><item partNum="100-AA"/><ref part="999-ZZ"/></order>`,
		"missing field":   `<order><item/></order>`,
	} {
		streamDiff(t, v, label, src)
	}
	res := v.Stream().ValidateBytes([]byte(`<order><item partNum="1"/><item partNum="1"/></order>`))
	if res.OK() || !strings.Contains(res.Err().Error(), "duplicate value") {
		t.Errorf("identity constraint not enforced through the fallback: %v", res.Err())
	}
}

// TestStreamConcurrent drives one shared Validator's streaming path from
// many goroutines (run under -race in the tier-1 extended recipe). The
// compiled-model cache is the only shared mutable state; every run's
// frames, ID maps and results are private.
func TestStreamConcurrent(t *testing.T) {
	v := poValidator(t)
	sv := v.Stream()
	valid := []byte(schemas.PurchaseOrderDoc)
	invalid := []byte(`<purchaseOrder orderDate="1999-10-20"><bogus/></purchaseOrder>`)
	const goroutines = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if res := sv.ValidateBytes(valid); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: valid doc rejected: %v", id, res.Err())
					return
				}
				if res := sv.ValidateReader(strings.NewReader(schemas.PurchaseOrderDoc)); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: valid doc rejected via reader: %v", id, res.Err())
					return
				}
				if res := sv.ValidateBytes(invalid); res.OK() {
					errs <- fmt.Errorf("goroutine %d: invalid doc accepted", id)
					return
				}
				// Interleave DOM-path runs on the same Validator: both
				// paths share the model cache.
				doc, perr := dom.ParseString(schemas.PurchaseOrderDoc)
				if perr != nil {
					errs <- perr
					return
				}
				if res := v.ValidateDocument(doc); !res.OK() {
					errs <- fmt.Errorf("goroutine %d: DOM path rejected valid doc: %v", id, res.Err())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Concurrent streaming must not have defeated the cache: the document
	// exercises a handful of complex types, each compiled exactly once.
	if n := v.CompiledModels(); n == 0 || n > 8 {
		t.Errorf("compiled %d models across concurrent stream+DOM runs — cache not shared", n)
	}
}

// cancelAfterReader cancels a context after n Reads, then keeps serving
// data — modelling a deadline tripping mid-stream rather than a closed
// connection.
type cancelAfterReader struct {
	r      io.Reader
	cancel context.CancelFunc
	reads  int
	after  int
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	c.reads++
	if c.reads == c.after {
		c.cancel()
	}
	if len(p) > 16 {
		p = p[:16] // small reads so cancellation lands mid-document
	}
	return c.r.Read(p)
}

func TestStreamValidateReaderContext(t *testing.T) {
	v := poValidator(t)
	sv := v.Stream()

	t.Run("uncancelled matches ValidateReader", func(t *testing.T) {
		res, err := sv.ValidateReaderContext(context.Background(), strings.NewReader(schemas.PurchaseOrderDoc))
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !res.OK() {
			t.Fatalf("valid document rejected: %v", res.Err())
		}
	})

	t.Run("pre-cancelled returns immediately", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := sv.ValidateReaderContext(ctx, strings.NewReader(schemas.PurchaseOrderDoc))
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatalf("partial result returned on cancellation: %+v", res)
		}
	})

	t.Run("cancel mid-stream stops the run", func(t *testing.T) {
		// A document long enough that > ctxCheckEvery tokens remain after
		// the cancellation point.
		var sb strings.Builder
		sb.WriteString(`<purchaseOrder orderDate="1999-10-20"><shipTo country="US"><name>a</name><street>s</street><city>c</city><state>CA</state><zip>1</zip></shipTo><billTo country="US"><name>b</name><street>s</street><city>c</city><state>PA</state><zip>2</zip></billTo><items>`)
		for i := 0; i < 2000; i++ {
			fmt.Fprintf(&sb, `<item partNum="%03d-AB"><productName>p</productName><quantity>1</quantity><USPrice>1.00</USPrice></item>`, i%1000)
		}
		sb.WriteString(`</items></purchaseOrder>`)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		r := &cancelAfterReader{r: strings.NewReader(sb.String()), cancel: cancel, after: 8}
		res, err := sv.ValidateReaderContext(ctx, r)
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatalf("partial result returned on cancellation")
		}
	})
}
