package normalize

import (
	"strings"
	"testing"

	"repro/internal/schemas"
	"repro/internal/xsd"
)

func normalized(t *testing.T, src string, scheme Scheme) *Result {
	t.Helper()
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	r, err := Normalize(s, scheme)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return r
}

func groupNames(r *Result) []string {
	var out []string
	for _, g := range r.Groups {
		out = append(out, g.Name)
	}
	return out
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestFig6InheritedNaming reproduces the paper's Fig. 6 name: under the
// merged (paper) scheme the choice inside PurchaseOrderType becomes
// PurchaseOrderTypeCC1Group.
func TestFig6InheritedNaming(t *testing.T) {
	r := normalized(t, schemas.EvolvedPurchaseOrderXSD, SchemePaper)
	names := groupNames(r)
	if !hasName(names, "PurchaseOrderTypeCC1Group") {
		t.Errorf("expected PurchaseOrderTypeCC1Group (Fig. 6), got %v", names)
	}
}

// TestFig5SynthesizedNaming reproduces the rejected Fig. 5 design's name:
// under pure synthesized naming the choice is singAddrORtwoAddr.
func TestFig5SynthesizedNaming(t *testing.T) {
	r := normalized(t, schemas.EvolvedPurchaseOrderXSD, SchemeSynthesized)
	names := groupNames(r)
	if !hasName(names, "singAddrORtwoAddrGroup") {
		t.Errorf("expected singAddrORtwoAddrGroup (Fig. 5), got %v", names)
	}
}

// TestExplicitNaming: named xs:group definitions keep their names
// (AddressGroup, §3).
func TestExplicitNaming(t *testing.T) {
	for _, scheme := range []Scheme{SchemePaper, SchemeSynthesized, SchemeInherited} {
		r := normalized(t, schemas.NamedGroupXSD, scheme)
		names := groupNames(r)
		if !hasName(names, "AddressGroup") {
			t.Errorf("%v: expected explicit AddressGroup, got %v", scheme, names)
		}
		for _, g := range r.Groups {
			if g.Name == "AddressGroup" && !g.Explicit {
				t.Errorf("AddressGroup should be marked explicit")
			}
		}
	}
}

// TestChoiceEvolutionStability is the crux of §3: adding a choice
// alternative changes the synthesized name but not the inherited one.
func TestChoiceEvolutionStability(t *testing.T) {
	before := schemas.EvolvedPurchaseOrderXSD
	after := strings.Replace(before,
		`<xsd:element name="twoAddr" type="twoAddress"/>
      </xsd:choice>`,
		`<xsd:element name="twoAddr" type="twoAddress"/>
        <xsd:element name="multAddr" type="USAddress"/>
      </xsd:choice>`, 1)
	if after == before {
		t.Fatal("evolution edit failed to apply")
	}

	// Synthesized: the name changes (singAddrORtwoAddr ->
	// singAddrORtwoAddrORmultAddr) — exactly the breakage §3 describes.
	rb := normalized(t, before, SchemeSynthesized)
	ra := normalized(t, after, SchemeSynthesized)
	if !hasName(groupNames(rb), "singAddrORtwoAddrGroup") {
		t.Fatalf("before: %v", groupNames(rb))
	}
	if !hasName(groupNames(ra), "singAddrORtwoAddrORmultAddrGroup") {
		t.Errorf("synthesized name should change: %v", groupNames(ra))
	}
	if hasName(groupNames(ra), "singAddrORtwoAddrGroup") {
		t.Errorf("old synthesized name should be gone: %v", groupNames(ra))
	}

	// Paper scheme (choice = inherited): the name is stable.
	rb = normalized(t, before, SchemePaper)
	ra = normalized(t, after, SchemePaper)
	if !hasName(groupNames(rb), "PurchaseOrderTypeCC1Group") || !hasName(groupNames(ra), "PurchaseOrderTypeCC1Group") {
		t.Errorf("inherited choice name should be stable: before %v, after %v", groupNames(rb), groupNames(ra))
	}
}

// TestMidSequenceInsertionChangesInheritedNames shows the paper's stated
// limitation: inserting an element mid-sequence shifts the positional
// names of later nested choices under inherited naming.
func TestMidSequenceInsertionChangesInheritedNames(t *testing.T) {
	before := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string"/>
      <xsd:choice>
        <xsd:element name="a" type="xsd:string"/>
        <xsd:element name="b" type="xsd:string"/>
      </xsd:choice>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	after := strings.Replace(before, `<xsd:element name="head" type="xsd:string"/>`,
		`<xsd:element name="head" type="xsd:string"/>
      <xsd:element name="inserted" type="xsd:string"/>`, 1)
	rb := normalized(t, before, SchemeInherited)
	ra := normalized(t, after, SchemeInherited)
	if !hasName(groupNames(rb), "TCC2Group") {
		t.Fatalf("before names: %v", groupNames(rb))
	}
	if !hasName(groupNames(ra), "TCC3Group") {
		t.Errorf("inserted element should shift the choice to CC3: %v", groupNames(ra))
	}
	// The explicit-naming fix keeps the name stable.
	explicit := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:group name="ABChoice">
    <xsd:choice>
      <xsd:element name="a" type="xsd:string"/>
      <xsd:element name="b" type="xsd:string"/>
    </xsd:choice>
  </xsd:group>
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:element name="head" type="xsd:string"/>
      <xsd:element name="inserted" type="xsd:string"/>
      <xsd:group ref="ABChoice"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	re := normalized(t, explicit, SchemeInherited)
	if !hasName(groupNames(re), "ABChoiceGroup") && !hasName(groupNames(re), "ABChoice") {
		t.Errorf("explicit group name lost: %v", groupNames(re))
	}
}

func TestAnonymousTypePromotion(t *testing.T) {
	r := normalized(t, schemas.PurchaseOrderXSD, SchemePaper)
	// item's anonymous complex type and quantity's anonymous simple type
	// must be promoted with names.
	var promoted []string
	for _, ti := range r.Types {
		if ti.Promoted {
			promoted = append(promoted, ti.Name)
		}
	}
	if len(promoted) != 2 {
		t.Fatalf("promoted types: %v", promoted)
	}
	if !hasName(promoted, "ItemType") {
		t.Errorf("item's anonymous type should be ItemType: %v", promoted)
	}
	if !hasName(promoted, "QuantityType") {
		t.Errorf("quantity's anonymous type should be QuantityType: %v", promoted)
	}
}

func TestTypeNamesDeterministic(t *testing.T) {
	r1 := normalized(t, schemas.PurchaseOrderXSD, SchemePaper)
	r2 := normalized(t, schemas.PurchaseOrderXSD, SchemePaper)
	n1, n2 := make([]string, 0), make([]string, 0)
	for _, ti := range r1.Types {
		n1 = append(n1, ti.Name)
	}
	for _, ti := range r2.Types {
		n2 = append(n2, ti.Name)
	}
	if strings.Join(n1, ",") != strings.Join(n2, ",") {
		t.Errorf("non-deterministic type inventory:\n%v\n%v", n1, n2)
	}
}

func TestNameCollisions(t *testing.T) {
	// Two anonymous types in contexts that sanitize to the same name.
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="a">
    <xsd:complexType><xsd:sequence>
      <xsd:element name="x" type="xsd:string"/>
    </xsd:sequence></xsd:complexType>
  </xsd:element>
  <xsd:complexType name="AType">
    <xsd:sequence><xsd:element name="y" type="xsd:string"/></xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	r := normalized(t, src, SchemePaper)
	seen := map[string]bool{}
	for _, ti := range r.Types {
		if seen[ti.Name] {
			t.Errorf("duplicate generated name %q", ti.Name)
		}
		seen[ti.Name] = true
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"purchaseOrder": "purchaseOrder",
		"ship-to":       "shipTo",
		"my.type":       "myType",
		"2fast":         "X2fast",
		"a_b":           "aB",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestListSuffix(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="T">
    <xsd:sequence>
      <xsd:sequence minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="k" type="xsd:string"/>
        <xsd:element name="v" type="xsd:string"/>
      </xsd:sequence>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`
	r := normalized(t, src, SchemePaper)
	names := groupNames(r)
	if !hasName(names, "kANDvList") {
		t.Errorf("repeating sequence should get the List suffix: %v", names)
	}
}
