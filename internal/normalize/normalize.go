package normalize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xsd"
)

// Scheme selects the naming scheme for anonymous constructs.
type Scheme int

// Naming schemes.
const (
	// SchemePaper is the merged rule of §3: inherited for choices,
	// synthesized for sequences and lists, explicit names kept.
	SchemePaper Scheme = iota
	// SchemeSynthesized names every group after its members.
	SchemeSynthesized
	// SchemeInherited names every group after the defining type and the
	// position path.
	SchemeInherited
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemePaper:
		return "paper"
	case SchemeSynthesized:
		return "synthesized"
	case SchemeInherited:
		return "inherited"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// GroupInfo is one promoted (or explicitly named) model group.
type GroupInfo struct {
	// Name is the generated (or explicit) name.
	Name string
	// Group is the underlying model group.
	Group *xsd.ModelGroup
	// Particle is the particle carrying the group (occurrence bounds).
	Particle *xsd.Particle
	// Owner is the complex type the group appears in.
	Owner *xsd.ComplexType
	// Explicit marks groups that had a schema-level name (xs:group).
	Explicit bool
}

// TypeInfo is one named type in the normalized schema.
type TypeInfo struct {
	// Name is the (possibly generated) type name.
	Name string
	// Type is the component; anonymous types are promoted.
	Type xsd.Type
	// Promoted marks types that were anonymous in the source schema.
	Promoted bool
}

// Result is the outcome of normalization: a name for every type and every
// group expression, plus deterministic inventories for code generation.
type Result struct {
	Schema *xsd.Schema
	Scheme Scheme

	// TypeNames names every type, including promoted anonymous ones.
	TypeNames map[xsd.Type]string
	// GroupNames names every model group that needs an interface.
	GroupNames map[*xsd.ModelGroup]string

	// Types lists all named types in deterministic order.
	Types []TypeInfo
	// Groups lists all named groups in deterministic order.
	Groups []GroupInfo
	// Elements lists global element declarations in deterministic order.
	Elements []*xsd.ElementDecl

	used map[string]bool
}

// Normalize computes the normal form of a schema under the given scheme.
func Normalize(s *xsd.Schema, scheme Scheme) (*Result, error) {
	r := &Result{
		Schema:     s,
		Scheme:     scheme,
		TypeNames:  map[xsd.Type]string{},
		GroupNames: map[*xsd.ModelGroup]string{},
		used:       map[string]bool{},
	}
	// 1. Global elements, sorted by name.
	for _, q := range sortedElementNames(s) {
		r.Elements = append(r.Elements, s.Elements[q])
	}
	// 2. Named global types keep their names.
	for _, q := range sortedTypeNames(s) {
		t := s.Types[q]
		name := sanitizeIdent(q.Local)
		r.claim(name)
		r.TypeNames[t] = name
		r.Types = append(r.Types, TypeInfo{Name: name, Type: t})
	}
	// 3. Anonymous types get names from their defining context: the
	// paper generates "a type name" for unnamed types (rule 2). The name
	// is the element/attribute context in upper camel + "Type".
	for _, t := range s.AnonymousTypes() {
		ctx := anonContext(t)
		name := r.unique(sanitizeIdent(upperFirst(ctx)) + "Type")
		r.TypeNames[t] = name
		r.Types = append(r.Types, TypeInfo{Name: name, Type: t, Promoted: true})
	}
	// 4. Walk every complex type's particle tree and name nested groups.
	for _, info := range r.Types {
		ct, ok := info.Type.(*xsd.ComplexType)
		if !ok || ct.Particle == nil {
			continue
		}
		r.nameGroups(ct, info.Name, ct.Particle, "C", true)
	}
	return r, nil
}

// anonContext extracts the definition context of an anonymous type.
func anonContext(t xsd.Type) string {
	switch x := t.(type) {
	case *xsd.ComplexType:
		return firstWord(x.Context)
	case *xsd.SimpleType:
		return firstWord(x.Context)
	}
	return "Anon"
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		return "Anon"
	}
	return s
}

// nameGroups assigns names to group expressions below particle. path is
// the inherited-naming position path so far (e.g. "C", "CC1"); top marks
// the type's own top-level group, which needs no separate name (its
// members become the type's own attributes) unless it is a choice.
func (r *Result) nameGroups(owner *xsd.ComplexType, ownerName string, particle *xsd.Particle, path string, top bool) {
	g := particle.Group
	if g == nil {
		return
	}
	// Recurse first using positional paths so sibling indexes are
	// stable: child i gets path + "C" + (i+1).
	for i, child := range g.Particles {
		r.nameGroups(owner, ownerName, child, fmt.Sprintf("%sC%d", path, i+1), false)
	}
	// A type's own top-level sequence needs no separate name (its
	// members become the type's attributes, paper rule 4) — unless it is
	// a choice (rule 6) or repeats as a whole (a list expression).
	needsName := !top || g.Kind == xsd.Choice || particleIsList(particle)
	if !needsName {
		return
	}
	if _, done := r.GroupNames[g]; done {
		return
	}
	var name string
	explicit := false
	switch {
	case !g.DefName.IsZero():
		// Paper §3: explicit naming via named group declarations.
		name = sanitizeIdent(g.DefName.Local)
		explicit = true
	default:
		name = r.schemeName(owner, ownerName, g, path)
	}
	suffix := "Group"
	if g.Kind == xsd.Sequence && particleIsList(particle) {
		suffix = "List"
	}
	if !strings.HasSuffix(name, suffix) {
		name += suffix
	}
	name = r.unique(name)
	r.GroupNames[g] = name
	r.Groups = append(r.Groups, GroupInfo{
		Name: name, Group: g, Particle: particle, Owner: owner, Explicit: explicit,
	})
}

// schemeName picks the generated name per the active scheme.
func (r *Result) schemeName(owner *xsd.ComplexType, ownerName string, g *xsd.ModelGroup, path string) string {
	switch r.Scheme {
	case SchemeSynthesized:
		return r.synthesizedName(g)
	case SchemeInherited:
		return ownerName + path
	default: // SchemePaper: choice inherited, sequence/list synthesized
		if g.Kind == xsd.Choice {
			return ownerName + path
		}
		return r.synthesizedName(g)
	}
}

// synthesizedName joins the member names: singAddrORtwoAddr for choices,
// aANDb for sequences (the paper shows the OR form; AND is the natural
// sequence analogue).
func (r *Result) synthesizedName(g *xsd.ModelGroup) string {
	sep := "AND"
	if g.Kind == xsd.Choice {
		sep = "OR"
	}
	var parts []string
	for _, child := range g.Particles {
		switch {
		case child.Element != nil:
			parts = append(parts, sanitizeIdent(child.Element.Name.Local))
		case child.Group != nil:
			if !child.Group.DefName.IsZero() {
				parts = append(parts, sanitizeIdent(child.Group.DefName.Local))
			} else {
				parts = append(parts, r.synthesizedName(child.Group))
			}
		case child.Wildcard != nil:
			parts = append(parts, "any")
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, sep)
}

// particleIsList reports whether the particle repeats (maxOccurs > 1),
// which the paper calls a list expression.
func particleIsList(p *xsd.Particle) bool {
	return p.Max == xsd.Unbounded || p.Max > 1
}

// claim records a used name.
func (r *Result) claim(name string) { r.used[name] = true }

// unique disambiguates a candidate against already-claimed names.
func (r *Result) unique(name string) string {
	if !r.used[name] {
		r.used[name] = true
		return name
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", name, i)
		if !r.used[cand] {
			r.used[cand] = true
			return cand
		}
	}
}

// GroupName returns the assigned name of a group expression.
func (r *Result) GroupName(g *xsd.ModelGroup) (string, bool) {
	n, ok := r.GroupNames[g]
	return n, ok
}

// TypeName returns the assigned name of a type.
func (r *Result) TypeName(t xsd.Type) (string, bool) {
	n, ok := r.TypeNames[t]
	return n, ok
}

// sanitizeIdent maps an XML name to an identifier-safe string.
func sanitizeIdent(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == '-' || r == '.' || r == '_':
			// Word separators: drop and capitalize the next letter.
			// Handled below via a second pass for simplicity.
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" {
		return "X"
	}
	// Convert snake-ish separators to camel case.
	parts := strings.Split(out, "_")
	var b strings.Builder
	for i, p := range parts {
		if p == "" {
			continue
		}
		if i == 0 {
			b.WriteString(p)
		} else {
			b.WriteString(upperFirst(p))
		}
	}
	res := b.String()
	if res == "" {
		return "X"
	}
	if res[0] >= '0' && res[0] <= '9' {
		res = "X" + res
	}
	return res
}

// upperFirst capitalizes the first byte (ASCII names only; non-ASCII
// names keep their case).
func upperFirst(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

func sortedElementNames(s *xsd.Schema) []xsd.QName {
	var out []xsd.QName
	for q := range s.Elements {
		out = append(out, q)
	}
	sortQNames(out)
	return out
}

func sortedTypeNames(s *xsd.Schema) []xsd.QName {
	var out []xsd.QName
	for q := range s.Types {
		if q.Space == xsd.XSDNamespace {
			continue // built-ins need no generated types
		}
		out = append(out, q)
	}
	sortQNames(out)
	return out
}

func sortQNames(qs []xsd.QName) {
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].Space != qs[j].Space {
			return qs[i].Space < qs[j].Space
		}
		return qs[i].Local < qs[j].Local
	})
}
