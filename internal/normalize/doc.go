// Package normalize implements the schema normal form of the paper's §3
// and its naming schemes for anonymous constructs.
//
// The paper's normal form requires that (1) element declarations have a
// named type as content, (2) complex types have no nested unnamed group
// expressions, and (3) every unnamed nested group is expressed by a named
// group definition. The open question §3 spends most of its time on is
// *which names* to generate:
//
//   - Synthesized naming derives the name from the member names
//     (singAddrORtwoAddr). Adding a choice alternative changes the name
//     and breaks every program using it.
//   - Inherited naming derives the name from the defining type and the
//     position path (PurchaseOrderTypeCC1, PurchaseOrderTypeCC1C2). It is
//     stable under added choice alternatives but changes silently when a
//     sequence is extended — which is the desired behaviour, says the
//     paper, since a sequence's value really did change.
//   - The paper's merged rule: inherited naming for choice groups,
//     synthesized naming for sequence groups and list expressions, and
//     explicit names for xs:group definitions.
//
// Experiment E6 quantifies the stability of each scheme under the three
// schema evolutions the paper discusses.
//
// # Role in the pipeline
//
// normalize is the second stage of the pipeline (xsd parse → normalize →
// contentmodel → codegen/vdom → validator → pxml): it takes the resolved
// component model from package xsd and assigns the stable names that
// package codegen turns into Go type names, so the normal form decides
// the entire surface of the generated API.
//
// # Concurrency
//
// Normalize reads the input schema and produces a fresh Result; it never
// runs concurrently with itself on one schema in this codebase. Treat a
// normalization pass as an exclusive phase: do not normalize a schema
// while other goroutines use it. The returned Result is immutable
// afterwards and safe to share.
package normalize
