package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread uniformly over 1ms..100ms: the quantile
	// estimates must land within a factor-2 bucket of the true values.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.MaxNs != int64(100*time.Millisecond) {
		t.Errorf("max = %d, want %d", s.MaxNs, int64(100*time.Millisecond))
	}
	check := func(name string, got, trueVal int64) {
		t.Helper()
		if got < trueVal/2 || got > trueVal*2 {
			t.Errorf("%s = %dns, want within factor 2 of %dns", name, got, trueVal)
		}
	}
	check("p50", s.P50Ns, int64(50*time.Millisecond))
	check("p90", s.P90Ns, int64(90*time.Millisecond))
	check("p99", s.P99Ns, int64(99*time.Millisecond))
	if s.P50Ns > s.P90Ns || s.P90Ns > s.P99Ns {
		t.Errorf("quantiles not monotone: p50=%d p90=%d p99=%d", s.P50Ns, s.P90Ns, s.P99Ns)
	}
	if s.P99Ns > s.MaxNs {
		t.Errorf("p99 %d above observed max %d", s.P99Ns, s.MaxNs)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99Ns != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	// Beyond the top bucket bound: the overflow bucket reports the max.
	h.Observe(10 * time.Minute)
	if s := h.Snapshot(); s.P99Ns != int64(10*time.Minute) {
		t.Errorf("overflow p99 = %d, want observed max %d", s.P99Ns, int64(10*time.Minute))
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	const goroutines, rounds = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := m.Series("po", "dom")
				s.Requests.Inc()
				s.Latency.Observe(time.Millisecond)
				m.Series("po", "stream").Requests.Inc()
				m.InFlight.Inc()
				m.InFlight.Dec()
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if len(snap.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(snap.Series))
	}
	// Sorted by endpoint within the schema: dom before stream.
	if snap.Series[0].Endpoint != "dom" || snap.Series[1].Endpoint != "stream" {
		t.Fatalf("series not sorted: %+v", snap.Series)
	}
	want := int64(goroutines * rounds)
	if snap.Series[0].Requests != want || snap.Series[0].Latency.Count != want {
		t.Errorf("dom series lost updates: %+v", snap.Series[0])
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after balanced inc/dec", snap.InFlight)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var m Metrics
	s := m.Series("po", "dom")
	s.Requests.Add(3)
	s.Invalid.Inc()
	s.Latency.Observe(2 * time.Millisecond)
	m.Reloads.Inc()

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Reloads != 1 || len(snap.Series) != 1 || snap.Series[0].Requests != 3 || snap.Series[0].Invalid != 1 {
		t.Errorf("round-tripped snapshot diverged: %+v", snap)
	}
}
