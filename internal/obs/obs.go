package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Add and Load are single atomic operations, so counters on
// the request hot path cost a few nanoseconds and never contend on a lock.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (e.g. in-flight requests). Unlike
// Counter it can go down.
type Gauge struct{ v atomic.Int64 }

// Inc raises the gauge by one and returns the new level.
func (g *Gauge) Inc() int64 { return g.v.Add(1) }

// Dec lowers the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the level, for gauges recomputed from scratch each sweep
// (e.g. peers alive) rather than tracked incrementally.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: exponential, factor-2 buckets starting at
// 1µs. Bucket i covers (bounds[i-1], bounds[i]] nanoseconds; the last
// slot collects everything above the top bound (~137s). 28 buckets span
// every latency a validation request can plausibly have while keeping a
// histogram at 30 words — cheap enough for one per schema × endpoint.
const numBuckets = 28

// bucketBounds returns the upper bound of bucket i in nanoseconds.
func bucketBound(i int) int64 { return int64(1000) << uint(i) }

// Histogram records a latency distribution with lock-free atomic bucket
// counters. The zero value is ready to use. Observations and snapshots
// may race benignly: a snapshot taken mid-Observe misses at most the
// in-flight samples, it never tears a value.
type Histogram struct {
	counts [numBuckets + 1]atomic.Int64
	sum    atomic.Int64 // total observed ns
	count  atomic.Int64
	max    atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < numBuckets && ns > bucketBound(i) {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a consistent-enough copy of a histogram with
// derived quantiles, shaped for JSON export.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	MaxNs  int64   `json:"max_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
}

// Snapshot copies the histogram and derives its summary quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, MaxNs: h.max.Load()}
	if total == 0 {
		return s
	}
	s.MeanNs = float64(h.sum.Load()) / float64(total)
	s.P50Ns = quantile(&counts, total, s.MaxNs, 0.50)
	s.P90Ns = quantile(&counts, total, s.MaxNs, 0.90)
	s.P99Ns = quantile(&counts, total, s.MaxNs, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by linear
// interpolation within the containing bucket. Estimates are bounded by
// the bucket resolution (a factor of 2), which is plenty for "is p99
// drifting" dashboards; the overflow bucket reports the observed max.
func quantile(counts *[numBuckets + 1]int64, total int64, maxNs int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		cum += counts[i]
		if cum > rank {
			if i == numBuckets {
				return maxNs
			}
			lo := int64(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			if hi > maxNs && maxNs > lo {
				hi = maxNs // never report above the observed max
			}
			// Position of the rank within this bucket's count.
			inBucket := rank - (cum - counts[i])
			return lo + (hi-lo)*(inBucket+1)/counts[i]
		}
	}
	return maxNs
}

// Series is the per-(schema, endpoint) measurement bundle the server
// updates on every request. All fields are independently atomic; there is
// no per-request lock anywhere in the package.
type Series struct {
	Schema   string
	Endpoint string

	Requests Counter // requests that reached a validator
	Invalid  Counter // completed validations with a non-empty violation list
	Errors   Counter // requests that failed before/without a verdict (4xx/5xx)
	Shed     Counter // requests rejected by the concurrency limiter (429)
	Latency  Histogram
}

// Metrics is the process-wide registry of measurement series, keyed by
// (schema, endpoint). Lookup is a sync.Map read on the hot path; series
// are created on first use and never removed (the key space — schemas ×
// endpoints — is small and bounded by the schema registry).
type Metrics struct {
	series sync.Map // seriesKey -> *Series

	// Reloads counts registry swap attempts observed by the process;
	// ReloadErrors the ones that failed. InFlight is the live request
	// level, exported so load tests can see the limiter working.
	Reloads      Counter
	ReloadErrors Counter
	InFlight     Gauge

	// Compat aggregates the compatibility classifications reloads
	// produce (one observation per recompiled schema that replaced —
	// or was gated from replacing — a previous version).
	Compat CompatCounts

	// Cluster meters cross-node routing and gossip. Call EnableCluster
	// once at startup when the process joins a fleet; until then the
	// bundle is omitted from snapshots.
	Cluster        ClusterCounts
	clusterEnabled atomic.Bool
}

// EnableCluster marks the process as clustered, which adds the Cluster
// bundle to every subsequent Snapshot.
func (m *Metrics) EnableCluster() { m.clusterEnabled.Store(true) }

// CompatCounts tallies schema-evolution classifications by level, plus
// the versions a compatibility gate refused to publish. Levels are
// carried as strings so obs stays free of schema-layer dependencies.
type CompatCounts struct {
	Backward Counter
	Forward  Counter
	Full     Counter
	None     Counter
	Gated    Counter
}

// Observe records one classification ("backward", "forward", "full" or
// "none"; anything else counts as none) and whether the gate rejected it.
func (c *CompatCounts) Observe(level string, gated bool) {
	switch level {
	case "backward":
		c.Backward.Inc()
	case "forward":
		c.Forward.Inc()
	case "full":
		c.Full.Inc()
	default:
		c.None.Inc()
	}
	if gated {
		c.Gated.Inc()
	}
}

// CompatSnapshot is the exported view of CompatCounts.
type CompatSnapshot struct {
	Backward int64 `json:"backward"`
	Forward  int64 `json:"forward"`
	Full     int64 `json:"full"`
	None     int64 `json:"none"`
	Gated    int64 `json:"gated"`
}

// ClusterCounts meters the cluster tier: schema-sharded request routing
// (proxy hops, retries after a dead owner, redirects) and the gossip
// loop that converges registry snapshots across the fleet. Like every
// other bundle in this package the fields are independently atomic. The
// counters live on Metrics unconditionally but are exported in the
// snapshot only once the process has marked itself clustered (a
// single-node /metrics stays unchanged).
type ClusterCounts struct {
	Proxied      Counter // requests forwarded to their ring owner
	ProxyRetries Counter // forwards retried on a ring successor after a dead/draining candidate
	ProxyLocal   Counter // forwards answered locally because every candidate was down
	Redirects    Counter // 307s pointing the client at the owner
	GossipPolls  Counter // peer status polls attempted
	GossipErrors Counter // polls that failed (peer down or bad response)
	PullReloads  Counter // local reloads kicked because a peer published a newer snapshot
	Divergence   Gauge   // peers whose registry fingerprint differs from ours (0 = converged)
	PeersAlive   Gauge   // peers that answered their most recent poll
}

// ClusterSnapshot is the exported view of ClusterCounts.
type ClusterSnapshot struct {
	Proxied      int64 `json:"proxied"`
	ProxyRetries int64 `json:"proxy_retries"`
	ProxyLocal   int64 `json:"proxy_local"`
	Redirects    int64 `json:"redirects"`
	GossipPolls  int64 `json:"gossip_polls"`
	GossipErrors int64 `json:"gossip_errors"`
	PullReloads  int64 `json:"pull_reloads"`
	Divergence   int64 `json:"divergence"`
	PeersAlive   int64 `json:"peers_alive"`
}

type seriesKey struct{ schema, endpoint string }

// Series returns the measurement bundle for (schema, endpoint), creating
// it on first use.
func (m *Metrics) Series(schema, endpoint string) *Series {
	k := seriesKey{schema, endpoint}
	if s, ok := m.series.Load(k); ok {
		return s.(*Series)
	}
	s, _ := m.series.LoadOrStore(k, &Series{Schema: schema, Endpoint: endpoint})
	return s.(*Series)
}

// SeriesSnapshot is one exported series.
type SeriesSnapshot struct {
	Schema   string            `json:"schema"`
	Endpoint string            `json:"endpoint"`
	Requests int64             `json:"requests"`
	Invalid  int64             `json:"invalid"`
	Errors   int64             `json:"errors"`
	Shed     int64             `json:"shed"`
	Latency  HistogramSnapshot `json:"latency"`
}

// RegistryInfo is the schema registry's state at snapshot time, attached
// by the serving layer (obs itself has no registry dependency): the
// published snapshot generation and how many schemas it serves. Scrapers
// correlate metric movements with config swaps through the generation.
type RegistryInfo struct {
	Generation int64 `json:"generation"`
	Schemas    int   `json:"schemas"`
}

// Snapshot is a point-in-time JSON-marshalable view of every series plus
// the process-level counters.
type Snapshot struct {
	Reloads      int64            `json:"reloads"`
	ReloadErrors int64            `json:"reload_errors"`
	InFlight     int64            `json:"in_flight"`
	Compat       CompatSnapshot   `json:"compat"`
	Cluster      *ClusterSnapshot `json:"cluster,omitempty"`
	Registry     *RegistryInfo    `json:"registry,omitempty"`
	Series       []SeriesSnapshot `json:"series"`
}

// Snapshot captures every series. Series are sorted by (schema, endpoint)
// so exports are diffable.
func (m *Metrics) Snapshot() *Snapshot {
	snap := &Snapshot{
		Reloads:      m.Reloads.Load(),
		ReloadErrors: m.ReloadErrors.Load(),
		InFlight:     m.InFlight.Load(),
		Compat: CompatSnapshot{
			Backward: m.Compat.Backward.Load(),
			Forward:  m.Compat.Forward.Load(),
			Full:     m.Compat.Full.Load(),
			None:     m.Compat.None.Load(),
			Gated:    m.Compat.Gated.Load(),
		},
	}
	if m.clusterEnabled.Load() {
		snap.Cluster = &ClusterSnapshot{
			Proxied:      m.Cluster.Proxied.Load(),
			ProxyRetries: m.Cluster.ProxyRetries.Load(),
			ProxyLocal:   m.Cluster.ProxyLocal.Load(),
			Redirects:    m.Cluster.Redirects.Load(),
			GossipPolls:  m.Cluster.GossipPolls.Load(),
			GossipErrors: m.Cluster.GossipErrors.Load(),
			PullReloads:  m.Cluster.PullReloads.Load(),
			Divergence:   m.Cluster.Divergence.Load(),
			PeersAlive:   m.Cluster.PeersAlive.Load(),
		}
	}
	m.series.Range(func(_, v any) bool {
		s := v.(*Series)
		snap.Series = append(snap.Series, SeriesSnapshot{
			Schema:   s.Schema,
			Endpoint: s.Endpoint,
			Requests: s.Requests.Load(),
			Invalid:  s.Invalid.Load(),
			Errors:   s.Errors.Load(),
			Shed:     s.Shed.Load(),
			Latency:  s.Latency.Snapshot(),
		})
		return true
	})
	sort.Slice(snap.Series, func(i, j int) bool {
		a, b := snap.Series[i], snap.Series[j]
		if a.Schema != b.Schema {
			return a.Schema < b.Schema
		}
		return a.Endpoint < b.Endpoint
	})
	return snap
}

// WriteJSON writes the current snapshot as indented JSON — the payload of
// the server's /metrics endpoint (expvar-style: plain JSON, no external
// metrics protocol).
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
