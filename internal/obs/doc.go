// Package obs provides the serving layer's observability primitives:
// lock-cheap counters, gauges and latency histograms, aggregated into
// per-(schema, endpoint) series and exported as plain JSON snapshots.
// It has no external dependencies — the export format is expvar-style
// JSON, not a metrics protocol — and nothing on the request hot path
// takes a lock.
//
// The primitives are deliberately minimal:
//
//   - Counter and Gauge are single atomic words.
//   - Histogram buckets latencies into factor-2 exponential buckets from
//     1µs to ~137s; Observe is a bucket scan plus four atomic adds, and
//     Snapshot derives p50/p90/p99 by interpolating within the containing
//     bucket (bounded by the factor-2 resolution, which is what a
//     "did p99 drift" dashboard needs — not what a benchmark needs; the
//     E-series benchmarks keep using testing.B).
//   - Metrics is the process-wide registry: Series(schema, endpoint)
//     returns the measurement bundle on a sync.Map fast path, and
//     Snapshot/WriteJSON export everything sorted and diffable.
//   - CompatCounts tallies the schema-evolution classifications reloads
//     produce (backward/forward/full/none, plus gate rejections), keyed
//     by level strings so obs stays free of schema-layer dependencies.
//
// # Role in the pipeline
//
// obs sits beside the serving layer (registry → server → obs): package
// server updates a Series around every validation request and serves
// WriteJSON at /metrics, and the xsdserved integration test asserts the
// exported counts match the load it drove. Nothing below the serving
// layer (validator, contentmodel, dom) depends on it.
package obs
