package compat

import (
	"testing"

	"repro/internal/gen/evolvedgen"
	"repro/internal/xsd"
)

// reversed maps the expected level of old → new to that of new → old.
var reversed = map[string]string{
	"backward": "forward",
	"forward":  "backward",
	"full":     "full",
	"none":     "none",
}

// TestEvolvedPairs runs the classifier over the generated evolution
// corpus: each evolved schema must classify at its declared level, and
// the reversed pair at the mirrored level (a backward evolution read
// backwards is a forward one).
func TestEvolvedPairs(t *testing.T) {
	for _, pair := range evolvedgen.Pairs() {
		t.Run(pair.Name, func(t *testing.T) {
			oldS, err := xsd.ParseString(pair.Old, nil)
			if err != nil {
				t.Fatalf("parse old: %v", err)
			}
			newS, err := xsd.ParseString(pair.New, nil)
			if err != nil {
				t.Fatalf("parse new: %v", err)
			}
			r := Classify(oldS, newS)
			if r.Level.String() != pair.Want {
				t.Errorf("Classify(old, new) = %s, want %s\nbackward breaks: %v\nforward breaks: %v",
					r.Level, pair.Want, r.BackwardBreaks, r.ForwardBreaks)
			}
			rev := Classify(newS, oldS)
			if rev.Level.String() != reversed[pair.Want] {
				t.Errorf("Classify(new, old) = %s, want %s\nbackward breaks: %v\nforward breaks: %v",
					rev.Level, reversed[pair.Want], rev.BackwardBreaks, rev.ForwardBreaks)
			}
		})
	}
}
