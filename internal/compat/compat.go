// Package compat classifies how one version of a schema relates to
// another, in the sense made standard by schema registries: the *new*
// schema is backward compatible when every document valid under the old
// schema is still valid under the new one (readers built against the new
// schema can consume old data), forward compatible when every document
// valid under the new schema was already valid under the old one (old
// readers can consume new data), and fully compatible when both hold.
//
// The check is semantic, not syntactic. Content models are compared by
// language inclusion over their Glushkov automata
// (contentmodel.Includes), so a rewrite from (a,b)|(a,c) to a,(b|c) is
// recognized as equivalent, while reordering a sequence or tightening
// minOccurs is flagged. Element types are compared recursively with a
// coinductive memo so recursive types terminate. Simple types are
// compared structurally: derivation-chain widening (the new type is an
// ancestor restriction of the old) and enumeration widening (same chain,
// the old value set is a subset of the new) are recognized; any other
// facet change is conservatively reported as incompatible — the
// classifier never claims compatibility it cannot prove, but may reject
// exotic relaxations it cannot see.
package compat

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/contentmodel"
	"repro/internal/xsd"
	"repro/internal/xsdtypes"
)

// Level is a compatibility classification, ordered by strength.
type Level int

// Compatibility levels.
const (
	// None: documents exist that each version rejects and the other
	// accepts.
	None Level = iota
	// Forward: old readers accept all new documents, but not vice versa.
	Forward
	// Backward: new readers accept all old documents, but not vice versa.
	Backward
	// Full: the two versions accept the same documents (up to the
	// classifier's precision).
	Full
)

// String names the level the way registry configs spell it.
func (l Level) String() string {
	switch l {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	case Full:
		return "full"
	default:
		return "none"
	}
}

// ParseLevel parses a level name as spelled by String (for flag values).
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none":
		return None, nil
	case "forward":
		return Forward, nil
	case "backward":
		return Backward, nil
	case "full":
		return Full, nil
	}
	return None, fmt.Errorf("compat: unknown level %q (want none, backward, forward or full)", s)
}

// StateBudget bounds each product-automaton inclusion check. Models whose
// product exceeds it are conservatively reported incompatible.
const StateBudget = 1 << 14

// Report is the outcome of classifying new against old.
type Report struct {
	// Level is the strongest classification both break lists support.
	Level Level
	// BackwardBreaks lists the reasons new does not accept every
	// old-valid document (empty when backward compatible).
	BackwardBreaks []string
	// ForwardBreaks lists the reasons old does not accept every
	// new-valid document (empty when forward compatible).
	ForwardBreaks []string
}

// Backward reports whether every old-valid document is new-valid.
func (r *Report) Backward() bool { return len(r.BackwardBreaks) == 0 }

// Forward reports whether every new-valid document is old-valid.
func (r *Report) Forward() bool { return len(r.ForwardBreaks) == 0 }

// Satisfies reports whether the classification meets a required gate
// level: a backward gate needs Backward(), a forward gate Forward(), a
// full gate both; a none gate always passes.
func (r *Report) Satisfies(gate Level) bool {
	switch gate {
	case Backward:
		return r.Backward()
	case Forward:
		return r.Forward()
	case Full:
		return r.Backward() && r.Forward()
	default:
		return true
	}
}

// Classify compares two resolved schemas and reports the compatibility of
// new relative to old.
func Classify(old, new *xsd.Schema) *Report {
	r := &Report{
		BackwardBreaks: accepts(new, old),
		ForwardBreaks:  accepts(old, new),
	}
	switch {
	case r.Backward() && r.Forward():
		r.Level = Full
	case r.Backward():
		r.Level = Backward
	case r.Forward():
		r.Level = Forward
	default:
		r.Level = None
	}
	return r
}

// accepts returns the reasons sup does not accept every document valid
// under sub (empty means it accepts them all).
func accepts(sup, sub *xsd.Schema) []string {
	c := &checker{sup: sup, sub: sub, memo: map[typePair]bool{}}
	var names []xsd.QName
	for q := range sub.Elements {
		names = append(names, q)
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Space != names[j].Space {
			return names[i].Space < names[j].Space
		}
		return names[i].Local < names[j].Local
	})
	for _, q := range names {
		decl := sub.Elements[q]
		if decl.Abstract {
			// Abstract heads never appear in instances; their members
			// are globals checked in their own right.
			continue
		}
		supDecl, ok := sup.Elements[q]
		if !ok {
			c.breakf("global element %s is no longer declared", q)
			continue
		}
		c.checkDecl(supDecl, decl, "element "+q.String())
	}
	return c.breaks
}

type typePair struct{ sup, sub xsd.Type }

type checker struct {
	sup, sub *xsd.Schema
	memo     map[typePair]bool
	breaks   []string
}

func (c *checker) breakf(format string, args ...any) {
	c.breaks = append(c.breaks, fmt.Sprintf(format, args...))
}

// checkDecl compares two element declarations sharing a name: value
// constraints, nillability and then the types.
func (c *checker) checkDecl(sup, sub *xsd.ElementDecl, path string) {
	if sub.Nillable && !sup.Nillable {
		c.breakf("%s: nillable was revoked", path)
	}
	if sup.Fixed != nil && (sub.Fixed == nil || *sub.Fixed != *sup.Fixed) {
		c.breakf("%s: fixed value %q was added or changed", path, *sup.Fixed)
	}
	c.typeAccepts(sup.Type, sub.Type, path)
}

// typeAccepts reports (and records breaks) whether sup accepts every
// element content valid under sub. Recursive types are handled
// coinductively: a pair under evaluation is presumed compatible, so the
// recursion bottoms out and the check computes a greatest fixpoint.
func (c *checker) typeAccepts(sup, sub xsd.Type, path string) bool {
	if sup == nil || sub == nil {
		return sup == sub
	}
	if sup == sub {
		return true
	}
	k := typePair{sup, sub}
	if v, ok := c.memo[k]; ok {
		return v
	}
	c.memo[k] = true // coinductive seed for recursive types
	before := len(c.breaks)
	ok := c.typeAccepts1(sup, sub, path)
	if ok {
		// Suppress breaks recorded by speculative sub-checks that an
		// alternative rule later satisfied (e.g. union member search).
		c.breaks = c.breaks[:before]
	}
	c.memo[k] = ok
	return ok
}

func (c *checker) typeAccepts1(sup, sub xsd.Type, path string) bool {
	switch supT := sup.(type) {
	case *xsd.SimpleType:
		if subT, isSimple := sub.(*xsd.SimpleType); isSimple {
			if !simpleAccepts(supT, subT) {
				c.breakf("%s: simple type narrowed (%s does not cover %s)", path, typeName(sup), typeName(sub))
				return false
			}
			return true
		}
		// Old complex, new simple: old documents may carry attributes or
		// children a simple type cannot.
		c.breakf("%s: type changed from complex to simple", path)
		return false
	case *xsd.ComplexType:
		if subT, isComplex := sub.(*xsd.ComplexType); isComplex {
			return c.complexAccepts(supT, subT, path)
		}
		// Old simple, new complex: acceptable only for simple content
		// with no newly required attributes.
		if supT.Kind != xsd.ContentSimple {
			c.breakf("%s: type changed from simple to structured complex content", path)
			return false
		}
		for _, u := range supT.AttributeUses {
			if u.Required && !u.Prohibited {
				c.breakf("%s: required attribute %s added to previously simple-typed element", path, u.Decl.Name)
				return false
			}
		}
		if !simpleAccepts(supT.SimpleContentType, sub.(*xsd.SimpleType)) {
			c.breakf("%s: simple content narrowed (%s does not cover %s)", path, typeName(sup), typeName(sub))
			return false
		}
		return true
	}
	return false
}

// complexAccepts compares content kind, content model language,
// attributes and then recurses into shared child element declarations.
func (c *checker) complexAccepts(sup, sub *xsd.ComplexType, path string) bool {
	ok := true
	switch sub.Kind {
	case xsd.ContentSimple:
		if sup.Kind != xsd.ContentSimple {
			c.breakf("%s: simple content replaced by %s", path, kindName(sup.Kind))
			return false
		}
		if !simpleAccepts(sup.SimpleContentType, sub.SimpleContentType) {
			c.breakf("%s: simple content narrowed (%s does not cover %s)",
				path, simpleName(sup.SimpleContentType), simpleName(sub.SimpleContentType))
			ok = false
		}
	case xsd.ContentMixed:
		if sup.Kind != xsd.ContentMixed {
			c.breakf("%s: mixed content no longer allowed", path)
			return false
		}
		ok = c.particleAccepts(sup, sub, path) && ok
	default: // element-only or empty
		switch sup.Kind {
		case xsd.ContentSimple:
			// An empty element (no text) is valid under simple content
			// only when the simple type accepts the empty string.
			if sub.Kind == xsd.ContentEmpty && sup.SimpleContentType != nil &&
				sup.SimpleContentType.Validate("") == nil {
				break
			}
			c.breakf("%s: element content replaced by simple content", path)
			return false
		default:
			ok = c.particleAccepts(sup, sub, path) && ok
		}
	}
	ok = c.attributesAccept(sup, sub, path) && ok
	return ok
}

// particleAccepts runs the language-inclusion check on the two content
// models and recurses into element declarations both sides share.
func (c *checker) particleAccepts(sup, sub *xsd.ComplexType, path string) bool {
	gSup, errSup := contentmodel.CompileGlushkov(c.sup.CompileParticle(sup.Particle))
	gSub, errSub := contentmodel.CompileGlushkov(c.sub.CompileParticle(sub.Particle))
	ok := true
	switch {
	case errSup != nil || errSub != nil:
		c.breakf("%s: content model too large to compare", path)
		ok = false
	default:
		incl, err := contentmodel.Includes(gSup, gSub, StateBudget)
		switch {
		case errors.Is(err, contentmodel.ErrInclusionBudget):
			c.breakf("%s: content-model inclusion check exceeded its state budget", path)
			ok = false
		case err != nil:
			c.breakf("%s: content-model comparison failed: %v", path, err)
			ok = false
		case !incl:
			c.breakf("%s: content model no longer accepts all previously valid child sequences", path)
			ok = false
		}
	}
	supDecls := map[xsd.QName]*xsd.ElementDecl{}
	collectDecls(sup.Particle, supDecls)
	subDecls := map[xsd.QName]*xsd.ElementDecl{}
	collectDecls(sub.Particle, subDecls)
	var names []xsd.QName
	for q := range subDecls {
		if _, shared := supDecls[q]; shared {
			names = append(names, q)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if names[i].Space != names[j].Space {
			return names[i].Space < names[j].Space
		}
		return names[i].Local < names[j].Local
	})
	for _, q := range names {
		before := len(c.breaks)
		c.checkDecl(supDecls[q], subDecls[q], path+"/"+q.Local)
		if len(c.breaks) > before {
			ok = false
		}
	}
	return ok
}

// collectDecls gathers element declarations reachable in a particle tree,
// first declaration wins per name (XSD's element-declarations-consistent
// rule makes duplicates agree on type anyway).
func collectDecls(p *xsd.Particle, out map[xsd.QName]*xsd.ElementDecl) {
	if p == nil {
		return
	}
	if p.Element != nil {
		if _, ok := out[p.Element.Name]; !ok {
			out[p.Element.Name] = p.Element
		}
	}
	if p.Group != nil {
		for _, ch := range p.Group.Particles {
			collectDecls(ch, out)
		}
	}
}

// attributesAccept checks that sup admits every attribute set sub admits:
// no attribute removed or newly required, no value space narrowed, no
// fixed value introduced.
func (c *checker) attributesAccept(sup, sub *xsd.ComplexType, path string) bool {
	ok := true
	for _, subUse := range sub.AttributeUses {
		if subUse.Prohibited {
			continue
		}
		name := subUse.Decl.Name
		supUse := sup.FindAttributeUse(name)
		if supUse == nil || supUse.Prohibited {
			if sup.AttrWildcard != nil && sup.AttrWildcard.Admits(name.Space) {
				continue
			}
			c.breakf("%s: attribute %s is no longer allowed", path, name)
			ok = false
			continue
		}
		if !simpleAccepts(supUse.Decl.Type, subUse.Decl.Type) {
			c.breakf("%s: attribute %s type narrowed (%s does not cover %s)",
				path, name, simpleName(supUse.Decl.Type), simpleName(subUse.Decl.Type))
			ok = false
		}
		if supUse.Fixed != nil && (subUse.Fixed == nil || *subUse.Fixed != *supUse.Fixed) {
			c.breakf("%s: attribute %s acquired fixed value %q", path, name, *supUse.Fixed)
			ok = false
		}
	}
	for _, supUse := range sup.AttributeUses {
		if !supUse.Required || supUse.Prohibited {
			continue
		}
		name := supUse.Decl.Name
		subUse := findUse(sub, name)
		if subUse == nil || !subUse.Required || subUse.Prohibited {
			c.breakf("%s: attribute %s is newly required", path, name)
			ok = false
		}
	}
	return ok
}

func findUse(ct *xsd.ComplexType, name xsd.QName) *xsd.AttributeUse {
	u := ct.FindAttributeUse(name)
	if u != nil && u.Prohibited {
		return nil
	}
	return u
}

// simpleAccepts reports whether every value valid under sub is valid
// under sup. The check is structural and conservative: it recognizes
// identity, derivation widening (sub restricts sup, directly or by an
// equal chain with extra steps) and enumeration widening; unions are
// covered member-wise. Anything it cannot prove it rejects.
func simpleAccepts(sup, sub *xsd.SimpleType) bool {
	if sup == sub {
		return true
	}
	if sup == nil || sub == nil {
		return false
	}
	// Restriction steps that add no facets do not change the value
	// space; skip them so dropping every facet of a step reads as
	// widening to its base.
	sup, sub = stripEmptySteps(sup), stripEmptySteps(sub)
	// Same-schema pointer chains and built-in derivation.
	if sub.DerivesFrom(sup) {
		return true
	}
	// Cross-schema: sup structurally equals sub or one of sub's ancestor
	// restrictions (sub only adds constraining steps on top of sup).
	for t := sub; t != nil; t = t.Base {
		if simpleEqual(sup, t, false) {
			return true
		}
	}
	// Enumeration widening: identical chains apart from enumeration
	// facets, with sub's effective value set contained in sup's (a
	// missing set on sup means unconstrained).
	if simpleEqual(sup, sub, true) {
		supE, subE := enumSet(sup), enumSet(sub)
		if supE == nil {
			return true
		}
		if subE == nil {
			return false
		}
		for v := range subE {
			if !supE[v] {
				return false
			}
		}
		return true
	}
	// A union on the new side covers the old type when some member does.
	if sup.Variety == xsd.VarietyUnion && len(sup.Facets.Enumeration) == 0 && len(sup.Facets.Patterns) == 0 {
		for _, m := range sup.MemberTypes {
			if simpleAccepts(m, sub) {
				return true
			}
		}
	}
	// A union on the old side is covered when every member is.
	if sub.Variety == xsd.VarietyUnion {
		for _, m := range sub.MemberTypes {
			if !simpleAccepts(sup, m) {
				return false
			}
		}
		return len(sub.MemberTypes) > 0
	}
	return false
}

// simpleEqual compares two simple-type definitions structurally,
// optionally ignoring enumeration facets.
func simpleEqual(a, b *xsd.SimpleType, ignoreEnum bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Builtin != nil || b.Builtin != nil {
		return a.Builtin == b.Builtin
	}
	if a.Variety != b.Variety || !facetsEqual(&a.Facets, &b.Facets, ignoreEnum) {
		return false
	}
	switch a.Variety {
	case xsd.VarietyList:
		return simpleEqual(a.ItemType, b.ItemType, ignoreEnum) && simpleEqual(a.Base, b.Base, ignoreEnum)
	case xsd.VarietyUnion:
		if len(a.MemberTypes) != len(b.MemberTypes) {
			return false
		}
		for i := range a.MemberTypes {
			if !simpleEqual(a.MemberTypes[i], b.MemberTypes[i], ignoreEnum) {
				return false
			}
		}
		return simpleEqual(a.Base, b.Base, ignoreEnum)
	default:
		return simpleEqual(a.Base, b.Base, ignoreEnum)
	}
}

func facetsEqual(a, b *xsdtypes.Facets, ignoreEnum bool) bool {
	if !intEq(a.Length, b.Length) || !intEq(a.MinLength, b.MinLength) || !intEq(a.MaxLength, b.MaxLength) ||
		!intEq(a.TotalDigits, b.TotalDigits) || !intEq(a.FractionDigits, b.FractionDigits) {
		return false
	}
	if len(a.Patterns) != len(b.Patterns) {
		return false
	}
	for i := range a.Patterns {
		if a.Patterns[i].String() != b.Patterns[i].String() {
			return false
		}
	}
	if !ignoreEnum {
		if len(a.Enumeration) != len(b.Enumeration) {
			return false
		}
		seen := map[string]bool{}
		for _, v := range a.Enumeration {
			seen[v.String()] = true
		}
		for _, v := range b.Enumeration {
			if !seen[v.String()] {
				return false
			}
		}
	}
	if !valEq(a.MinInclusive, b.MinInclusive) || !valEq(a.MaxInclusive, b.MaxInclusive) ||
		!valEq(a.MinExclusive, b.MinExclusive) || !valEq(a.MaxExclusive, b.MaxExclusive) {
		return false
	}
	if (a.WhiteSpace == nil) != (b.WhiteSpace == nil) {
		return false
	}
	return a.WhiteSpace == nil || *a.WhiteSpace == *b.WhiteSpace
}

func intEq(a, b *int) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func valEq(a, b *xsdtypes.Value) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.String() == b.String()
}

// stripEmptySteps removes leading atomic restriction steps that declare
// no facets: they are value-space-identical to their base.
func stripEmptySteps(t *xsd.SimpleType) *xsd.SimpleType {
	for t != nil && t.Builtin == nil && t.Variety == xsd.VarietyAtomic &&
		t.Base != nil && t.Facets.IsEmpty() {
		t = t.Base
	}
	return t
}

// enumSet returns the effective enumeration value set of a chain (the
// intersection of its enumeration steps), nil when unconstrained.
func enumSet(t *xsd.SimpleType) map[string]bool {
	var set map[string]bool
	for s := t; s != nil && s.Builtin == nil; s = s.Base {
		if len(s.Facets.Enumeration) == 0 {
			continue
		}
		step := map[string]bool{}
		for _, v := range s.Facets.Enumeration {
			step[v.String()] = true
		}
		if set == nil {
			set = step
			continue
		}
		for k := range set {
			if !step[k] {
				delete(set, k)
			}
		}
	}
	return set
}

func typeName(t xsd.Type) string {
	if t == nil {
		return "<nil>"
	}
	if q := t.TypeName(); !q.IsZero() {
		return q.String()
	}
	return "anonymous type"
}

func simpleName(t *xsd.SimpleType) string {
	if t == nil {
		return "<nil>"
	}
	return typeName(t)
}

func kindName(k xsd.ContentKind) string {
	switch k {
	case xsd.ContentSimple:
		return "simple content"
	case xsd.ContentMixed:
		return "mixed content"
	case xsd.ContentElementOnly:
		return "element-only content"
	default:
		return "empty content"
	}
}
