package compat

import (
	"strings"
	"testing"

	"repro/internal/xsd"
)

func mustParse(t *testing.T, body string) *xsd.Schema {
	t.Helper()
	src := `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:v"
            xmlns:v="urn:v" elementFormDefault="qualified">` + body + `</xsd:schema>`
	s, err := xsd.ParseString(src, nil)
	if err != nil {
		t.Fatalf("ParseString: %v\n%s", err, body)
	}
	return s
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		want     Level
	}{
		{"identical",
			`<xsd:element name="a" type="xsd:string"/>`,
			`<xsd:element name="a" type="xsd:string"/>`,
			Full},
		{"added optional trailing element",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			   <xsd:element name="b" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			Backward},
		{"removed optional element",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			   <xsd:element name="b" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			Forward},
		{"renamed child element",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="b" type="xsd:string"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			None},
		{"content model refactored, same language",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string" maxOccurs="2"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			   <xsd:element name="a" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			Full},
		{"minOccurs tightened",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			Forward},
		{"enumeration widened",
			`<xsd:element name="status" type="v:Status"/>
			 <xsd:simpleType name="Status"><xsd:restriction base="xsd:string">
			   <xsd:enumeration value="open"/>
			 </xsd:restriction></xsd:simpleType>`,
			`<xsd:element name="status" type="v:Status"/>
			 <xsd:simpleType name="Status"><xsd:restriction base="xsd:string">
			   <xsd:enumeration value="open"/><xsd:enumeration value="closed"/>
			 </xsd:restriction></xsd:simpleType>`,
			Backward},
		{"element type widened along builtin chain",
			`<xsd:element name="n" type="xsd:int"/>`,
			`<xsd:element name="n" type="xsd:integer"/>`,
			Backward},
		{"attribute made required",
			`<xsd:element name="doc"><xsd:complexType>
			   <xsd:attribute name="id" type="xsd:string"/>
			 </xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType>
			   <xsd:attribute name="id" type="xsd:string" use="required"/>
			 </xsd:complexType></xsd:element>`,
			Forward},
		{"optional attribute added",
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence/></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence/>
			   <xsd:attribute name="id" type="xsd:string"/>
			 </xsd:complexType></xsd:element>`,
			Backward},
		{"global element removed",
			`<xsd:element name="a" type="xsd:string"/><xsd:element name="b" type="xsd:string"/>`,
			`<xsd:element name="a" type="xsd:string"/>`,
			Forward},
		{"nillable revoked",
			`<xsd:element name="a" type="xsd:string" nillable="true"/>`,
			`<xsd:element name="a" type="xsd:string"/>`,
			Forward},
		{"recursive type gains optional attribute",
			`<xsd:element name="node" type="v:Node"/>
			 <xsd:complexType name="Node"><xsd:sequence>
			   <xsd:element name="child" type="v:Node" minOccurs="0" maxOccurs="unbounded"/>
			 </xsd:sequence></xsd:complexType>`,
			`<xsd:element name="node" type="v:Node"/>
			 <xsd:complexType name="Node"><xsd:sequence>
			   <xsd:element name="child" type="v:Node" minOccurs="0" maxOccurs="unbounded"/>
			 </xsd:sequence><xsd:attribute name="label" type="xsd:string"/></xsd:complexType>`,
			Backward},
		{"mixed content revoked",
			`<xsd:element name="doc"><xsd:complexType mixed="true"><xsd:sequence>
			   <xsd:element name="a" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			`<xsd:element name="doc"><xsd:complexType><xsd:sequence>
			   <xsd:element name="a" type="xsd:string" minOccurs="0"/>
			 </xsd:sequence></xsd:complexType></xsd:element>`,
			Forward},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldS, newS := mustParse(t, tc.old), mustParse(t, tc.new)
			r := Classify(oldS, newS)
			if r.Level != tc.want {
				t.Errorf("Level = %s, want %s\nbackward breaks: %v\nforward breaks: %v",
					r.Level, tc.want, r.BackwardBreaks, r.ForwardBreaks)
			}
			if r.Backward() != (tc.want == Backward || tc.want == Full) {
				t.Errorf("Backward() = %v inconsistent with level %s", r.Backward(), r.Level)
			}
			if r.Forward() != (tc.want == Forward || tc.want == Full) {
				t.Errorf("Forward() = %v inconsistent with level %s", r.Forward(), r.Level)
			}
		})
	}
}

func TestClassifyBreakDetails(t *testing.T) {
	oldS := mustParse(t, `<xsd:element name="doc"><xsd:complexType><xsd:sequence>
	  <xsd:element name="a" type="xsd:string"/>
	</xsd:sequence></xsd:complexType></xsd:element>`)
	newS := mustParse(t, `<xsd:element name="doc"><xsd:complexType><xsd:sequence>
	  <xsd:element name="a" type="xsd:string"/>
	  <xsd:element name="b" type="xsd:string"/>
	</xsd:sequence></xsd:complexType></xsd:element>`)
	r := Classify(oldS, newS)
	if r.Level != None {
		t.Fatalf("Level = %s, want none (new requires b, old forbids it)", r.Level)
	}
	if len(r.BackwardBreaks) == 0 || !strings.Contains(r.BackwardBreaks[0], "content model") {
		t.Errorf("backward breaks = %v, want a content-model reason", r.BackwardBreaks)
	}
	if len(r.ForwardBreaks) == 0 {
		t.Errorf("forward breaks empty, want a reason")
	}
}

func TestSatisfies(t *testing.T) {
	backward := &Report{Level: Backward, ForwardBreaks: []string{"x"}}
	full := &Report{Level: Full}
	none := &Report{Level: None, BackwardBreaks: []string{"x"}, ForwardBreaks: []string{"y"}}
	for _, tc := range []struct {
		r    *Report
		gate Level
		want bool
	}{
		{backward, None, true}, {backward, Backward, true}, {backward, Forward, false}, {backward, Full, false},
		{full, Backward, true}, {full, Forward, true}, {full, Full, true},
		{none, None, true}, {none, Backward, false},
	} {
		if got := tc.r.Satisfies(tc.gate); got != tc.want {
			t.Errorf("level %s gate %s: Satisfies = %v, want %v", tc.r.Level, tc.gate, got, tc.want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for _, l := range []Level{None, Backward, Forward, Full} {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLevel("sideways"); err == nil {
		t.Error("ParseLevel should reject unknown names")
	}
}
