package repro

// The central theorem as a property test: EVERY tree expressible through
// the generated V-DOM API marshals to a document the independent runtime
// validator accepts. The generator below drives the whole purchase-order
// API surface randomly (optional members present or absent, item counts,
// attribute presence, valid random values) — if any reachable program
// produced an invalid document, this test would find it.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen/pogen"
	"repro/internal/gen/wmlgen"
	"repro/internal/validator"
	"repro/internal/vdom"
)

// randWord produces a short random token.
func randWord(r *rand.Rand) string {
	n := 1 + r.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// randSKU produces a valid SKU (\d{3}-[A-Z]{2}).
func randSKU(r *rand.Rand) string {
	return fmt.Sprintf("%03d-%c%c", r.Intn(1000), 'A'+r.Intn(26), 'A'+r.Intn(26))
}

// randOrder builds a random purchase order through the typed API.
func randOrder(r *rand.Rand, d *pogen.Document) (*pogen.PurchaseOrderElement, error) {
	addr := func() (*pogen.USAddressType, error) {
		a := d.CreateUSAddressType(
			d.CreateName(randWord(r)),
			d.CreateStreet(randWord(r)),
			d.CreateCity(randWord(r)),
			d.CreateState(randWord(r)),
			d.MustZip(fmt.Sprintf("%d", r.Intn(100000))),
		)
		if r.Intn(2) == 0 {
			if err := a.SetCountry("US"); err != nil {
				return nil, err
			}
		}
		return a, nil
	}
	items := d.CreateItemsType()
	for i := 0; i < r.Intn(6); i++ {
		it := d.CreateItemTypeType(
			d.CreateProductName(randWord(r)),
			d.MustQuantity(fmt.Sprintf("%d", 1+r.Intn(99))),
			d.MustUSPrice(fmt.Sprintf("%d.%02d", r.Intn(1000), r.Intn(100))),
		)
		if err := it.SetPartNum(randSKU(r)); err != nil {
			return nil, err
		}
		if r.Intn(2) == 0 {
			it.SetComment(d.CreateComment(randWord(r)))
		}
		if r.Intn(2) == 0 {
			it.SetShipDate(d.MustShipDate(fmt.Sprintf("%04d-%02d-%02d", 1900+r.Intn(200), 1+r.Intn(12), 1+r.Intn(28))))
		}
		items.AddItem(d.CreateItem(it))
	}
	shipAddr, err := addr()
	if err != nil {
		return nil, err
	}
	billAddr, err := addr()
	if err != nil {
		return nil, err
	}
	po := d.CreatePurchaseOrderTypeType(d.CreateShipTo(shipAddr), d.CreateBillTo(billAddr), d.CreateItems(items))
	if r.Intn(2) == 0 {
		po.SetComment(d.CreateComment(randWord(r)))
	}
	if r.Intn(2) == 0 {
		if err := po.SetOrderDate(fmt.Sprintf("%04d-%02d-%02d", 1900+r.Intn(200), 1+r.Intn(12), 1+r.Intn(28))); err != nil {
			return nil, err
		}
	}
	return d.CreatePurchaseOrder(po), nil
}

// TestPropertyVDOMAlwaysValid: 500 random typed programs, zero invalid
// documents.
func TestPropertyVDOMAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(20020101))
	d := pogen.NewDocument()
	v := validator.New(pogen.RT.Schema, nil)
	for i := 0; i < 500; i++ {
		root, err := randOrder(r, d)
		if err != nil {
			t.Fatalf("iteration %d: build: %v", i, err)
		}
		doc, err := vdom.Marshal(root)
		if err != nil {
			t.Fatalf("iteration %d: marshal: %v", i, err)
		}
		if res := v.ValidateDocument(doc); !res.OK() {
			out, _ := vdom.MarshalString(root)
			t.Fatalf("iteration %d: THE THEOREM IS BROKEN:\n%v\n%s", i, res.Err(), out)
		}
	}
}

// TestPropertyVDOMWmlAlwaysValid: the same property over the WML bindings
// (mixed content, choices, simple content with attributes).
func TestPropertyVDOMWmlAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(2002))
	d := wmlgen.NewDocument()
	v := validator.New(wmlgen.RT.Schema, nil)
	for i := 0; i < 300; i++ {
		deck := d.CreateWmlType()
		for c := 0; c < 1+r.Intn(3); c++ {
			card := d.CreateCardType()
			if r.Intn(2) == 0 {
				if err := card.SetId(randWord(r)); err != nil {
					t.Fatal(err)
				}
			}
			for pi := 0; pi < r.Intn(3); pi++ {
				p := d.CreatePType()
				for k := 0; k < r.Intn(5); k++ {
					switch r.Intn(4) {
					case 0:
						p.Text(randWord(r))
					case 1:
						p.Add(d.CreateB(randWord(r)))
					case 2:
						p.Add(d.CreateBr(d.CreateBrType()))
					case 3:
						sel := d.CreateSelectType()
						for o := 0; o < 1+r.Intn(3); o++ {
							opt, err := d.CreateOptionType(randWord(r))
							if err != nil {
								t.Fatal(err)
							}
							sel.AddOption(d.CreateOption(opt))
						}
						p.Add(d.CreateSelect(sel))
					}
				}
				card.AddP(d.CreateP(p))
			}
			deck.AddCard(d.CreateCard(card))
		}
		root := d.CreateWml(deck)
		doc, err := vdom.Marshal(root)
		if err != nil {
			t.Fatalf("iteration %d: marshal: %v", i, err)
		}
		if res := v.ValidateDocument(doc); !res.OK() {
			out, _ := vdom.MarshalString(root)
			t.Fatalf("iteration %d: WML theorem broken:\n%v\n%s", i, res.Err(), out)
		}
	}
}
