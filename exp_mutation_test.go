package repro

// E1 — the mutation study behind the paper's central claim ("the validity
// of all generated structures is guaranteed without any test runs"). For
// each systematic mutation of a generator program we record WHERE the
// error is caught on each path:
//
//   - P-XML path:      the preprocessor rejects the program statically.
//   - string/DOM path: the program compiles and runs; only parsing or
//     validating its output at runtime reveals the bug.
//
// The reproduced claim: every schema-violating mutation that P-XML can
// express is caught statically; on the baseline path every one of them
// survives compilation.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/normalize"
	"repro/internal/pxml"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// mutation is one seeded defect.
type mutation struct {
	name string
	// pxmlBody is the P-XML constructor statement with the defect.
	pxmlBody string
	// xmlOutput is what the equivalent string-template program would
	// emit at runtime.
	xmlOutput string
}

// validPXML wraps a body into a compilable P-XML source.
func validPXML(body string) string {
	return "package m\n//pxml:package pogen\n//pxml:doc d\nfunc f(d *pogen.Document) {\n\tx := " + body + "\n\t_ = x\n}\n"
}

// poMutations seeds one defect per validity rule of the Fig. 2/3 schema.
var poMutations = []mutation{
	{
		name:      "misspelled element",
		pxmlBody:  `<shipTo country="US"><nayme>n</nayme><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><nayme>n</nayme><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "children out of order",
		pxmlBody:  `<shipTo country="US"><street>s</street><name>n</name><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><street>s</street><name>n</name><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "missing required child",
		pxmlBody:  `<shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "duplicated singleton child",
		pxmlBody:  `<shipTo country="US"><name>n</name><name>n2</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><name>n2</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "undeclared attribute",
		pxmlBody:  `<shipTo planet="mars"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo planet="mars"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "fixed attribute violated",
		pxmlBody:  `<shipTo country="DE"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`,
		xmlOutput: `<purchaseOrder><shipTo country="DE"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
	},
	{
		name:      "facet violation (quantity >= 100)",
		pxmlBody:  `<quantity>250</quantity>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items><item partNum="926-AA"><productName>p</productName><quantity>250</quantity><USPrice>1</USPrice></item></items></purchaseOrder>`,
	},
	{
		name:      "pattern violation (SKU)",
		pxmlBody:  `<item partNum="not-a-sku"><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items><item partNum="not-a-sku"><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item></items></purchaseOrder>`,
	},
	{
		name:      "missing required attribute",
		pxmlBody:  `<item><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items><item><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice></item></items></purchaseOrder>`,
	},
	{
		name:      "bad date lexical",
		pxmlBody:  `<shipDate>next tuesday</shipDate>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items><item partNum="926-AA"><productName>p</productName><quantity>1</quantity><USPrice>1</USPrice><shipDate>next tuesday</shipDate></item></items></purchaseOrder>`,
	},
	{
		name:      "text in element-only content",
		pxmlBody:  `<items>stray</items>;`,
		xmlOutput: `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items>stray</items></purchaseOrder>`,
	},
}

// TestE1MutationStudy runs every mutation down both paths and prints the
// detection matrix recorded in EXPERIMENTS.md.
func TestE1MutationStudy(t *testing.T) {
	pp, err := pxml.New(pxml.Options{
		SchemaSource: schemas.PurchaseOrderXSD,
		Scheme:       normalize.SchemePaper,
		Package:      "pogen",
		DocExpr:      "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := validator.New(schema, nil)

	staticCaught, runtimeCaught := 0, 0
	t.Logf("%-36s %-18s %-18s", "mutation", "P-XML path", "string/DOM path")
	for _, m := range poMutations {
		// P-XML path: preprocessing is the (pre-run) static check.
		_, perr := pp.Rewrite(validPXML(m.pxmlBody))
		staticResult := "SURVIVES"
		if perr != nil {
			staticResult = "caught statically"
			staticCaught++
		}

		// Baseline path: the program "ran" and produced m.xmlOutput;
		// detection requires parsing + validating that output.
		runtimeResult := "SURVIVES"
		doc, derr := dom.ParseString(m.xmlOutput)
		if derr != nil {
			runtimeResult = "caught at parse"
			runtimeCaught++
		} else if res := v.ValidateDocument(doc); !res.OK() {
			runtimeResult = "caught at validate"
			runtimeCaught++
		}
		t.Logf("%-36s %-18s %-18s", m.name, staticResult, runtimeResult)

		if perr == nil {
			t.Errorf("mutation %q was not caught statically by P-XML", m.name)
		}
	}
	t.Logf("static detection: %d/%d; runtime-only detection on the baseline: %d/%d",
		staticCaught, len(poMutations), runtimeCaught, len(poMutations))
	if staticCaught != len(poMutations) {
		t.Errorf("P-XML should catch every mutation statically: %d/%d", staticCaught, len(poMutations))
	}
	if runtimeCaught != len(poMutations) {
		t.Errorf("the runtime validator should also catch every mutation (eventually): %d/%d", runtimeCaught, len(poMutations))
	}
}

// TestE1ValidProgramPassesBothPaths is the control: the unmutated program
// passes the preprocessor, and its output passes the validator.
func TestE1ValidProgramPassesBothPaths(t *testing.T) {
	pp, err := pxml.New(pxml.Options{
		SchemaSource: schemas.PurchaseOrderXSD,
		Scheme:       normalize.SchemePaper,
		Package:      "pogen",
		DocExpr:      "d",
	})
	if err != nil {
		t.Fatal(err)
	}
	good := `<shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo>;`
	if _, err := pp.Rewrite(validPXML(good)); err != nil {
		t.Errorf("control program rejected: %v", err)
	}
	schema, _ := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	doc, err := dom.ParseString(schemas.PurchaseOrderDoc)
	if err != nil {
		t.Fatal(err)
	}
	if res := validator.New(schema, nil).ValidateDocument(doc); !res.OK() {
		t.Errorf("control document rejected: %v", res.Err())
	}
}

// TestE1CompilerCannotSeeStringBugs documents the baseline's failure mode
// as a concrete artifact: the broken string generators compile (they are
// functions in this very package's test binary) and produce output that
// the XML layer rejects only at runtime.
func TestE1CompilerCannotSeeStringBugs(t *testing.T) {
	brokenOutputs := map[string]string{
		"overlapping tags":  "<html><head><title>x</head></title></html>",
		"unclosed element":  "<p><b>x</p>",
		"attribute garbage": `<p align=center>x</p>`,
	}
	for name, out := range brokenOutputs {
		if _, err := dom.ParseString(out); err == nil {
			t.Errorf("%s: expected a parse error", name)
		} else if !strings.Contains(err.Error(), "xml") {
			t.Errorf("%s: unexpected error shape: %v", name, err)
		}
	}
	_ = fmt.Sprintf // keep fmt for the table helpers above
}
