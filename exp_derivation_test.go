package repro

// E7 — the §3 derivation-feature matrix: for each XML Schema feature the
// paper maps onto inheritance (type extension, type restriction,
// substitution groups, abstract elements, abstract types), check the
// accept/reject behaviour on both the instance side (validator) and the
// generator side (V-DOM bindings, covered in internal/gen/derivgen).

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// e7Schema bundles every derivation feature in one vocabulary.
const e7Schema = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:complexContent>
      <xsd:extension base="Address">
        <xsd:sequence>
          <xsd:element name="zip" type="xsd:string"/>
        </xsd:sequence>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>

  <xsd:complexType name="AbstractBase" abstract="true">
    <xsd:sequence>
      <xsd:element name="tag" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Concrete">
    <xsd:complexContent>
      <xsd:extension base="AbstractBase">
        <xsd:sequence/>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>

  <xsd:simpleType name="SmallInt">
    <xsd:restriction base="xsd:integer">
      <xsd:maxInclusive value="10"/>
    </xsd:restriction>
  </xsd:simpleType>

  <xsd:element name="address" type="Address"/>
  <xsd:element name="thing" type="AbstractBase"/>
  <xsd:element name="small" type="SmallInt"/>

  <xsd:element name="comment" type="xsd:string"/>
  <xsd:element name="shipComment" type="xsd:string" substitutionGroup="comment"/>
  <xsd:complexType name="Block">
    <xsd:sequence>
      <xsd:element ref="comment" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:element name="block" type="Block"/>

</xsd:schema>`

// TestE7DerivationMatrix validates the accept/reject matrix.
func TestE7DerivationMatrix(t *testing.T) {
	schema, err := xsd.ParseString(e7Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := validator.New(schema, nil)
	xsi := `xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"`
	cases := []struct {
		name  string
		doc   string
		valid bool
	}{
		// Type extension: base content in a base slot.
		{"base in base slot", `<address><name>n</name><city>c</city></address>`, true},
		// Derived content requires xsi:type.
		{"derived without xsi:type", `<address><name>n</name><city>c</city><zip>1</zip></address>`, false},
		{"derived with xsi:type", `<address ` + xsi + ` xsi:type="USAddress"><name>n</name><city>c</city><zip>1</zip></address>`, true},
		{"xsi:type to unrelated type", `<address ` + xsi + ` xsi:type="Block"><comment>x</comment></address>`, false},
		// Abstract type: the element cannot appear with its declared
		// abstract type...
		{"abstract type directly", `<thing><tag>x</tag></thing>`, false},
		// ...but can with a concrete derived xsi:type.
		{"abstract via concrete xsi:type", `<thing ` + xsi + ` xsi:type="Concrete"><tag>x</tag></thing>`, true},
		// Simple type restriction stays dynamic.
		{"restriction within bounds", `<small>9</small>`, true},
		{"restriction violated", `<small>11</small>`, false},
		// Substitution groups.
		{"head element", `<block><comment>x</comment></block>`, true},
		{"substituted member", `<block><shipComment>x</shipComment></block>`, true},
		{"mixed head and member", `<block><comment>x</comment><shipComment>y</shipComment></block>`, true},
		{"non-member element", `<block><address><name>n</name><city>c</city></address></block>`, false},
	}
	t.Logf("%-34s %-8s %-8s", "case", "want", "got")
	for _, c := range cases {
		doc, derr := dom.ParseString(c.doc)
		if derr != nil {
			t.Fatalf("%s: %v", c.name, derr)
		}
		res := v.ValidateDocument(doc)
		t.Logf("%-34s %-8v %-8v", c.name, c.valid, res.OK())
		if res.OK() != c.valid {
			t.Errorf("%s: valid=%v, want %v (%v)", c.name, res.OK(), c.valid, res.Err())
		}
	}
}

// TestE7RestrictionIsRuntimeChecked pins the paper's §3 statement: "to
// enforce the restricted values validation checks at runtime are
// necessary" — the restriction type accepts and rejects by value, which no
// static Go type distinguishes.
func TestE7RestrictionIsRuntimeChecked(t *testing.T) {
	schema, _ := xsd.ParseString(e7Schema, nil)
	small := schema.Types[xsd.QName{Local: "SmallInt"}].(*xsd.SimpleType)
	if err := small.Validate("10"); err != nil {
		t.Errorf("boundary: %v", err)
	}
	err := small.Validate("11")
	if err == nil || !strings.Contains(err.Error(), "<= 10") {
		t.Errorf("restriction check: %v", err)
	}
}
