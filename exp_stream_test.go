package repro

// E8 — differential testing of the streaming validator against the DOM
// path. The streaming pass must reproduce ValidateBytes' verdicts exactly:
// same accept/reject decision, same violations, same order, same paths and
// messages — over every bundled schema, over generator-produced mutants of
// the paper's purchase order, and over malformed input.

import (
	"fmt"
	"strings"
	"testing"
	"testing/iotest"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// streamFeaturesXSD exercises the streaming modes the bundled schemas do
// not: empty content, mixed content, nillable elements, fixed/default
// element values, and IDREF resolution.
const streamFeaturesXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="doc" type="DocType"/>
  <xsd:complexType name="DocType">
    <xsd:sequence>
      <xsd:element name="marker" minOccurs="0">
        <xsd:complexType>
          <xsd:attribute name="tag" type="xsd:string"/>
        </xsd:complexType>
      </xsd:element>
      <xsd:element name="para" type="ParaType" minOccurs="0" maxOccurs="unbounded"/>
      <xsd:element name="opt" type="xsd:string" nillable="true" minOccurs="0" default="fallback"/>
      <xsd:element name="code" type="xsd:string" fixed="A1" minOccurs="0"/>
      <xsd:element name="node" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:attribute name="id" type="xsd:ID" use="required"/>
          <xsd:attribute name="ref" type="xsd:IDREF"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ParaType" mixed="true">
    <xsd:sequence>
      <xsd:element name="em" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
`

// diffCase is one schema+instances differential group.
type diffCase struct {
	name      string
	xsdSrc    string
	instances map[string]string
}

var diffCases = []diffCase{
	{
		name:   "purchase order",
		xsdSrc: schemas.PurchaseOrderXSD,
		instances: map[string]string{
			"paper fig 1":                schemas.PurchaseOrderDoc,
			"empty items":                `<purchaseOrder><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
			"unknown root":               `<notAnOrder/>`,
			"bad order date and bad zip": `<purchaseOrder orderDate="soon"><shipTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>abc</zip></shipTo><billTo country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></billTo><items/></purchaseOrder>`,
		},
	},
	{
		name:   "evolved purchase order",
		xsdSrc: schemas.EvolvedPurchaseOrderXSD,
		instances: map[string]string{
			"single address":      `<purchaseOrder><singAddr country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></singAddr><items/></purchaseOrder>`,
			"two addresses":       `<purchaseOrder><twoAddr><first country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></first><second country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></second></twoAddr><items/></purchaseOrder>`,
			"both alternatives":   `<purchaseOrder><singAddr country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></singAddr><twoAddr><first country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></first><second country="US"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></second></twoAddr><items/></purchaseOrder>`,
			"neither alternative": `<purchaseOrder><items/></purchaseOrder>`,
		},
	},
	{
		name:   "address derivation and substitution",
		xsdSrc: schemas.AddressDerivationXSD,
		instances: map[string]string{
			"base address":                `<address><name>n</name><street>s</street><city>c</city></address>`,
			"xsi:type extension":          `<address xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="USAddress"><name>n</name><street>s</street><city>c</city><state>st</state><zip>1</zip></address>`,
			"xsi:type unknown":            `<address xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="NoSuchType"><name>n</name></address>`,
			"xsi:type undeclared prefix":  `<address xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="po:USAddress"><name>n</name></address>`,
			"substitution group":          `<commentBlock><comment>a</comment><shipComment>b</shipComment><customerComment>c</customerComment></commentBlock>`,
			"abstract head used directly": `<noteBlock><note>x</note></noteBlock>`,
			"abstract head substituted":   `<noteBlock><shipNote>x</shipNote></noteBlock>`,
			"xsi:nil on non-nillable":     `<address xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:nil="true"/>`,
		},
	},
	{
		name:   "namespaced order",
		xsdSrc: schemas.NamespacedOrderXSD,
		instances: map[string]string{
			"valid qualified":      `<po:order xmlns:po="urn:example:po" priority="3"><po:id>7</po:id><po:note>hi</po:note></po:order>`,
			"default namespace":    `<order xmlns="urn:example:po"><id>7</id></order>`,
			"unqualified children": `<po:order xmlns:po="urn:example:po"><id>7</id></po:order>`,
			"wrong namespace":      `<order xmlns="urn:example:other"><id>7</id></order>`,
			"bad priority":         `<po:order xmlns:po="urn:example:po" priority="high"><po:id>7</po:id></po:order>`,
		},
	},
	{
		name:   "complex groups",
		xsdSrc: schemas.ComplexGroupsXSD,
		instances: map[string]string{
			"summary form":         `<report version="1"><title>t</title><summary>s</summary></report>`,
			"name form with pairs": `<report version="1"><title>t</title><first>f</first><last>l</last><key>k1</key><value>v1</value><key>k2</key><value>v2</value></report>`,
			"entries with ids":     `<report><title>t</title><summary>s</summary><entry id="a"><when>2001-01-01</when></entry><entry id="b"><when>2001-01-02</when></entry></report>`,
			"duplicate id":         `<report><title>t</title><summary>s</summary><entry id="a"><when>2001-01-01</when></entry><entry id="a"><when>2001-01-02</when></entry></report>`,
			// The journal test: entry's ID is tracked, then the content
			// model fails at <bogus/>; the DOM path never sees the ID.
			"id rollback on content failure": `<report><title>t</title><summary>s</summary><entry id="a"><when>2001-01-01</when></entry><bogus/><entry id="a"><when>2001-01-03</when></entry></report>`,
			"dangling key without value":     `<report><title>t</title><summary>s</summary><key>k</key></report>`,
			"text in element-only":           `<report><title>t</title>stray<summary>s</summary></report>`,
		},
	},
	{
		name:   "named group",
		xsdSrc: schemas.NamedGroupXSD,
		instances: map[string]string{
			"choice first":  `<purchaseOrder><singAddr>a</singAddr><items>i</items></purchaseOrder>`,
			"choice second": `<purchaseOrder><twoAddr>a</twoAddr><comment>c</comment><items>i</items></purchaseOrder>`,
			"both choices":  `<purchaseOrder><singAddr>a</singAddr><twoAddr>b</twoAddr><items>i</items></purchaseOrder>`,
			"missing items": `<purchaseOrder><singAddr>a</singAddr></purchaseOrder>`,
		},
	},
	{
		name:   "stream feature coverage",
		xsdSrc: streamFeaturesXSD,
		instances: map[string]string{
			"all features valid":                  `<doc xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><marker tag="m"/><para>mixed <em>text</em> here</para><opt xsi:nil="true"/><code>A1</code><node id="n1" ref="n2"/><node id="n2"/></doc>`,
			"empty content violated by element":   `<doc><marker><oops/></marker></doc>`,
			"empty content violated by text":      `<doc><marker>stray</marker></doc>`,
			"nilled with content":                 `<doc xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><opt xsi:nil="true">text</opt></doc>`,
			"nilled with comment":                 `<doc xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><opt xsi:nil="true"><!--c--></opt></doc>`,
			"xsi:nil false validates normally":    `<doc xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><opt xsi:nil="false"></opt></doc>`,
			"fixed value mismatch":                `<doc><code>B2</code></doc>`,
			"fixed value empty uses fixed":        `<doc><code/></doc>`,
			"dangling idref":                      `<doc><node id="n1" ref="ghost"/></doc>`,
			"mixed content accepts text":          `<doc><para>just text</para></doc>`,
			"mixed content rejects unknown child": `<doc><para>text <strong>x</strong></para></doc>`,
			"cdata in element-only":               `<doc><![CDATA[raw]]><marker/></doc>`,
		},
	},
	{
		name:   "malformed input",
		xsdSrc: schemas.PurchaseOrderXSD,
		instances: map[string]string{
			"mismatched tags":   `<purchaseOrder><shipTo></purchaseOrder>`,
			"truncated":         `<purchaseOrder><shipTo country="US"><name>n</nam`,
			"empty input":       ``,
			"garbage":           `not xml at all`,
			"undeclared prefix": `<purchaseOrder><po:items/></purchaseOrder>`,
			// Well-formedness error after a validity error: both paths
			// must report only the parse error.
			"late parse error after unknown root": `<nope><a></b></nope>`,
		},
	},
}

// assertSameResult fails the test unless the two results are identical in
// verdict, count, order, paths and messages.
func assertSameResult(t *testing.T, label string, domRes, streamRes *validator.Result) {
	t.Helper()
	if domRes.OK() != streamRes.OK() {
		t.Errorf("%s: verdict diverged: dom ok=%v stream ok=%v\n  dom: %v\n  stream: %v",
			label, domRes.OK(), streamRes.OK(), domRes.Violations, streamRes.Violations)
		return
	}
	if len(domRes.Violations) != len(streamRes.Violations) {
		t.Errorf("%s: violation count diverged: dom %d stream %d\n  dom: %v\n  stream: %v",
			label, len(domRes.Violations), len(streamRes.Violations), domRes.Violations, streamRes.Violations)
		return
	}
	for i := range domRes.Violations {
		if domRes.Violations[i] != streamRes.Violations[i] {
			t.Errorf("%s: violation %d diverged:\n  dom:    %v\n  stream: %v",
				label, i, domRes.Violations[i], streamRes.Violations[i])
		}
	}
}

// diffValidate runs one instance through both paths (and the streaming
// path a second time through a pathological one-byte reader) and asserts
// identical results.
func diffValidate(t *testing.T, schema *xsd.Schema, sv *validator.StreamValidator, label, src string) {
	t.Helper()
	_, domRes := validator.ValidateBytes(schema, []byte(src))
	streamRes := sv.ValidateBytes([]byte(src))
	assertSameResult(t, label, domRes, streamRes)
	readerRes := sv.ValidateReader(iotest.OneByteReader(strings.NewReader(src)))
	assertSameResult(t, label+" (one-byte reader)", domRes, readerRes)
}

// TestStreamMatchesDOM is the hand-curated differential corpus: every
// bundled schema plus a feature-coverage schema, valid and invalid
// instances, and malformed input.
func TestStreamMatchesDOM(t *testing.T) {
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tc.xsdSrc, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			sv := validator.New(schema, nil).Stream()
			for label, src := range tc.instances {
				diffValidate(t, schema, sv, label, src)
			}
		})
	}
}

// TestStreamMatchesDOMOnMutationCorpus replays E1's generator-produced
// mutants (one seeded defect per validity rule) through both paths.
func TestStreamMatchesDOMOnMutationCorpus(t *testing.T) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	sv := validator.New(schema, nil).Stream()
	for _, m := range poMutations {
		diffValidate(t, schema, sv, m.name, m.xmlOutput)
	}
}

// mutateDoc parses src fresh, applies op to the element at index idx
// (document order), and returns the serialized mutant. ok=false when the
// op does not apply to that element.
func mutateDoc(t *testing.T, src string, idx int, op string) (string, bool) {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var els []*dom.Element
	var walk func(n dom.Node)
	walk = func(n dom.Node) {
		if e, ok := n.(*dom.Element); ok {
			els = append(els, e)
		}
		for _, c := range n.ChildNodes() {
			walk(c)
		}
	}
	walk(doc.DocumentElement())
	if idx >= len(els) {
		return "", false
	}
	el := els[idx]
	isRoot := el == doc.DocumentElement()
	switch op {
	case "remove":
		if isRoot {
			return "", false
		}
		if _, err := el.ParentNode().RemoveChild(el); err != nil {
			t.Fatalf("remove: %v", err)
		}
	case "duplicate":
		if isRoot {
			return "", false
		}
		clone := el.CloneNode(true)
		if _, err := el.ParentNode().InsertBefore(clone, el); err != nil {
			t.Fatalf("duplicate: %v", err)
		}
	case "rename":
		renamed := doc.CreateElementNS(el.NamespaceURI(), el.TagName()+"x")
		for _, a := range el.Attributes() {
			renamed.SetAttributeNS(a.Name().Space, a.NodeName(), a.Value())
		}
		for len(el.ChildNodes()) > 0 {
			if _, err := renamed.AppendChild(el.ChildNodes()[0]); err != nil {
				t.Fatalf("rename move: %v", err)
			}
		}
		if _, err := el.ParentNode().ReplaceChild(renamed, el); err != nil {
			t.Fatalf("rename: %v", err)
		}
	case "bogus-attr":
		el.SetAttribute("bogusAttr", "1")
	case "inject-text":
		if _, err := el.AppendChild(doc.CreateTextNode("stray!")); err != nil {
			t.Fatalf("inject: %v", err)
		}
	default:
		t.Fatalf("unknown op %q", op)
	}
	return dom.ToString(doc), true
}

// TestStreamMatchesDOMOnGeneratedMutants applies five systematic mutation
// operators to every element of the paper's Fig. 1 instance and checks
// both validators agree on each mutant (~100 instances).
func TestStreamMatchesDOMOnGeneratedMutants(t *testing.T) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	sv := validator.New(schema, nil).Stream()
	ops := []string{"remove", "duplicate", "rename", "bogus-attr", "inject-text"}
	mutants := 0
	for _, op := range ops {
		for idx := 0; ; idx++ {
			src, ok := mutateDoc(t, schemas.PurchaseOrderDoc, idx, op)
			if !ok {
				if idx == 0 {
					continue
				}
				break
			}
			mutants++
			diffValidate(t, schema, sv, fmt.Sprintf("%s[%d]", op, idx), src)
		}
	}
	if mutants < 50 {
		t.Errorf("mutation engine produced only %d mutants; expected a broad corpus", mutants)
	}
}
