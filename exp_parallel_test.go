package repro

// E15 — differential testing of intra-document parallel validation
// against the sequential DOM walk. ParallelValidate must reproduce
// ValidateDocument's verdicts byte-exactly — same violations, same
// order, same paths and message text — at every worker count, over every
// bundled schema, the mutation corpora, and arbitrary fuzzed bytes. The
// performance side of E15 (speedup and tokenizer allocation) lives in
// BenchmarkE15.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/schemas"
	"repro/internal/validator"
	"repro/internal/xsd"
)

// parallelWorkerCounts are the pool sizes every differential case runs
// at: GOMAXPROCS default, minimal split, odd, and oversubscribed.
var parallelWorkerCounts = []int{0, 2, 3, 8}

// diffParallel validates one instance sequentially and at every worker
// count, asserting identical results. Malformed input goes through the
// one-step entry points on both sides.
func diffParallel(t *testing.T, schema *xsd.Schema, label, src string) {
	t.Helper()
	doc, domRes := validator.ValidateBytes(schema, []byte(src))
	if doc == nil {
		_, parRes := validator.ParallelValidateBytes(schema, []byte(src), 4)
		assertSameResult(t, label+" (malformed)", domRes, parRes)
		return
	}
	v := validator.New(schema, nil)
	for _, w := range parallelWorkerCounts {
		parRes := v.ParallelValidate(doc, w)
		assertSameResult(t, fmt.Sprintf("%s (workers=%d)", label, w), domRes, parRes)
	}
}

// forceTinySplits lowers the split threshold so the hand-sized corpus
// documents actually exercise the worker pool and seam join (at the
// default ParallelMinFanout they would all take the sequential path).
func forceTinySplits(t *testing.T) {
	t.Helper()
	old := validator.ParallelMinFanout
	validator.ParallelMinFanout = 2
	t.Cleanup(func() { validator.ParallelMinFanout = old })
}

// TestParallelMatchesSequential replays the full hand-curated E8
// differential corpus through the parallel walk.
func TestParallelMatchesSequential(t *testing.T) {
	forceTinySplits(t)
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tc.xsdSrc, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			for label, src := range tc.instances {
				diffParallel(t, schema, label, src)
			}
		})
	}
}

// TestParallelMatchesSequentialOnMutants replays the generator-produced
// purchase order mutants (both corpora) through the parallel walk.
func TestParallelMatchesSequentialOnMutants(t *testing.T) {
	forceTinySplits(t)
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	for _, m := range poMutations {
		diffParallel(t, schema, m.name, m.xmlOutput)
	}
	ops := []string{"remove", "duplicate", "rename", "bogus-attr", "inject-text"}
	for _, op := range ops {
		for idx := 0; ; idx++ {
			src, ok := mutateDoc(t, schemas.PurchaseOrderDoc, idx, op)
			if !ok {
				if idx == 0 {
					continue
				}
				break
			}
			diffParallel(t, schema, fmt.Sprintf("%s[%d]", op, idx), src)
		}
	}
}

// TestParallelLargeOrder scales the paper's Fig. 1 instance to thousands
// of depth-1-reachable items with scattered defects — the shape the
// worker pool is built for — and checks parity at every worker count.
func TestParallelLargeOrder(t *testing.T) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	diffParallel(t, schema, "large order", syntheticOrder(3000, true))
}

// syntheticOrder builds a purchase order with n items; withDefects seeds
// a bad value every 500th item.
func syntheticOrder(n int, withDefects bool) string {
	var sb strings.Builder
	sb.WriteString(`<purchaseOrder orderDate="1999-10-20"><shipTo country="US"><name>Alice Smith</name><street>123 Maple Street</street><city>Mill Valley</city><state>CA</state><zip>90952</zip></shipTo><billTo country="US"><name>Robert Smith</name><street>8 Oak Avenue</street><city>Old Town</city><state>PA</state><zip>95819</zip></billTo><items>`)
	for i := 0; i < n; i++ {
		qty := "1"
		if withDefects && i%500 == 250 {
			qty = "many"
		}
		fmt.Fprintf(&sb, `<item partNum="%03d-AB"><productName>Widget %d</productName><quantity>%s</quantity><USPrice>%d.95</USPrice><shipDate>1999-10-21</shipDate></item>`, i%1000, i, qty, i%90+1)
	}
	sb.WriteString(`</items></purchaseOrder>`)
	return sb.String()
}

// FuzzParallelValidate drives arbitrary bytes through the sequential and
// parallel walks under two schemas, demanding identical verdicts. Same
// discipline as FuzzGeneratedValidator.
func FuzzParallelValidate(f *testing.F) {
	f.Add([]byte(schemas.PurchaseOrderDoc))
	f.Add([]byte(`<doc><node id="a"/><node id="a"/><node ref="a"/></doc>`))
	f.Add([]byte(`<purchaseOrder><items><item partNum="1"><quantity>x</quantity></item></items></purchaseOrder>`))
	f.Add([]byte(`<report><title>t</title><summary>s</summary><entry id="a"><when>2001-01-01</when></entry><entry id="a"><when>x</when></entry></report>`))
	poSchema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		f.Fatal(err)
	}
	cgSchema, err := xsd.ParseString(schemas.ComplexGroupsXSD, nil)
	if err != nil {
		f.Fatal(err)
	}
	validator.ParallelMinFanout = 2 // hand-sized fuzz inputs must still split
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		doc, err := dom.Parse(src)
		if err != nil {
			return
		}
		for _, schema := range []*xsd.Schema{poSchema, cgSchema} {
			v := validator.New(schema, nil)
			want := v.ValidateDocument(doc)
			for _, w := range []int{2, 8} {
				got := v.ParallelValidate(doc, w)
				assertSameResult(t, fmt.Sprintf("workers=%d", w), want, got)
			}
		}
	})
}
