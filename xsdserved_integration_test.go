//go:build unix

package repro

// Integration test for cmd/xsdserved: boots the real binary on a loopback
// port and drives it over HTTP — validation (DOM and stream), health,
// schema listing, metrics, SIGHUP hot-reload, and SIGTERM graceful
// shutdown. This is the one test that proves the pieces (registry, server,
// obs, signal wiring) assemble into a working service, not just into
// packages that pass their own tests.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schemas"
)

// serveResponse mirrors the server's validate-endpoint JSON.
type serveResponse struct {
	Schema        string `json:"schema"`
	SchemaVersion int    `json:"schema_version"`
	Mode          string `json:"mode"`
	Valid         bool   `json:"valid"`
}

type serveSchemas struct {
	Generation int64 `json:"generation"`
	Schemas    []struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
	} `json:"schemas"`
}

func postForVerdict(t *testing.T, url, doc string) serveResponse {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, body)
	}
	var v serveResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode verdict: %v", err)
	}
	return v
}

// decodeServeResponse mirrors the server's decode-endpoint JSON.
type decodeServeResponse struct {
	Schema        string          `json:"schema"`
	SchemaVersion int             `json:"schema_version"`
	Mode          string          `json:"mode"`
	Valid         bool            `json:"valid"`
	Data          json.RawMessage `json:"data"`
}

func postForDecode(t *testing.T, url, doc string) decodeServeResponse {
	t.Helper()
	resp, err := http.Post(url, "application/xml", strings.NewReader(doc))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, body)
	}
	var v decodeServeResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestXsdservedIntegration(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	if testing.Short() {
		t.Skip("integration test builds and boots a binary")
	}

	bin := filepath.Join(t.TempDir(), "xsdserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/xsdserved").CombinedOutput(); err != nil {
		t.Fatalf("building xsdserved: %v\n%s", err, out)
	}

	schemaDir := t.TempDir()
	poPath := filepath.Join(schemaDir, "po.xsd")
	base := time.Now().Add(-time.Hour)
	if err := os.WriteFile(poPath, []byte(schemas.PurchaseOrderXSD), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(poPath, base, base); err != nil {
		t.Fatal(err)
	}

	// -reload 0 turns the mtime poll off so the reload later in the test is
	// attributable to SIGHUP alone.
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-schemas", schemaDir,
		"-wsdls", filepath.Join("testdata", "wsdl"),
		"-reload", "0",
		"-timeout", "10s",
		"-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
		if t.Failed() {
			t.Logf("xsdserved stderr:\n%s", stderr.String())
		}
	})

	// The binary announces its bound address on stdout — that is the
	// contract that makes -addr :0 usable by wrappers like this test.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "xsdserved listening on "); ok {
				addrc <- a
				return
			}
		}
	}()
	var baseURL string
	select {
	case a := <-addrc:
		baseURL = "http://" + a
	case <-time.After(15 * time.Second):
		t.Fatalf("no listening line on stdout; stderr:\n%s", stderr.String())
	}

	// DOM path: the paper's Figure 1 document is valid at version 1.
	v := postForVerdict(t, baseURL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if !v.Valid || v.Mode != "dom" || v.SchemaVersion != 1 {
		t.Fatalf("dom verdict = %+v, want valid v1 dom", v)
	}

	// Stream path: a constraint violation is a 200 with valid:false.
	badDoc := strings.Replace(schemas.PurchaseOrderDoc, "<quantity>1</quantity>", "<quantity>9999</quantity>", 1)
	v = postForVerdict(t, baseURL+"/v1/validate/po?stream=1", badDoc)
	if v.Valid || v.Mode != "stream" {
		t.Fatalf("stream verdict = %+v, want invalid stream", v)
	}

	if code := getJSON(t, baseURL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Decode endpoint: one-pass validate+decode, DOM and stream paths must
	// produce byte-identical canonical JSON.
	d := postForDecode(t, baseURL+"/v1/decode/po", schemas.PurchaseOrderDoc)
	if !d.Valid || d.Mode != "decode-dom" || len(d.Data) == 0 {
		t.Fatalf("decode verdict = %+v, want valid decode-dom with data", d)
	}
	if !strings.Contains(string(d.Data), `"$element":"purchaseOrder"`) {
		t.Fatalf("decode data missing root discriminator: %s", d.Data)
	}
	ds := postForDecode(t, baseURL+"/v1/decode/po?stream=1", schemas.PurchaseOrderDoc)
	if !ds.Valid || ds.Mode != "decode-stream" || !bytes.Equal(d.Data, ds.Data) {
		t.Fatalf("stream decode diverged from dom:\n  dom:    %s\n  stream: %s", d.Data, ds.Data)
	}
	di := postForDecode(t, baseURL+"/v1/decode/po", badDoc)
	if di.Valid || len(di.Data) != 0 {
		t.Fatalf("invalid decode = %+v, want valid:false without data", di)
	}

	// Encode endpoint: the decoded JSON maps back to schema-valid XML,
	// which decodes to the same JSON — the round trip holds through HTTP.
	encResp, err := http.Post(baseURL+"/v1/encode/po", "application/json", bytes.NewReader(d.Data))
	if err != nil {
		t.Fatalf("POST encode: %v", err)
	}
	encXML, _ := io.ReadAll(encResp.Body)
	encResp.Body.Close()
	if encResp.StatusCode != http.StatusOK || encResp.Header.Get("Content-Type") != "application/xml" {
		t.Fatalf("encode: status %d content-type %q: %s", encResp.StatusCode, encResp.Header.Get("Content-Type"), encXML)
	}
	d2 := postForDecode(t, baseURL+"/v1/decode/po", string(encXML))
	if !d2.Valid || !bytes.Equal(d.Data, d2.Data) {
		t.Fatalf("encode/decode round trip changed the value:\n  before: %s\n  after:  %s", d.Data, d2.Data)
	}

	// SOAP endpoints: every *.wsdl in -wsdls is mounted. The binary
	// registers no handlers, so the contract under test is the envelope
	// layer itself: WSDL echo is byte-identical, a schema-valid request
	// answers the not-implemented Fault (501, not a bare 500), and a
	// schema-invalid request answers a Fault carrying the violations (400).
	wsdlResp, err := http.Get(baseURL + "/v1/soap/Calc")
	if err != nil {
		t.Fatal(err)
	}
	echoed, _ := io.ReadAll(wsdlResp.Body)
	wsdlResp.Body.Close()
	if wsdlResp.StatusCode != http.StatusOK || string(echoed) != schemas.CalcWSDL {
		t.Fatalf("WSDL echo: status %d, byte-identical=%v", wsdlResp.StatusCode, string(echoed) == schemas.CalcWSDL)
	}
	if code := getJSON(t, baseURL+"/v1/soap/Orders", nil); code != http.StatusOK {
		t.Fatalf("Orders WSDL echo = %d", code)
	}

	addEnv := `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body>` +
		`<c:AddRequest xmlns:c="urn:calc"><c:a>40</c:a><c:b>2</c:b></c:AddRequest></e:Body></e:Envelope>`
	soapResp, err := http.Post(baseURL+"/v1/soap/Calc", "text/xml; charset=utf-8", strings.NewReader(addEnv))
	if err != nil {
		t.Fatal(err)
	}
	soapBody, _ := io.ReadAll(soapResp.Body)
	soapResp.Body.Close()
	if soapResp.StatusCode != http.StatusNotImplemented ||
		!strings.Contains(string(soapBody), "Fault") ||
		!strings.Contains(string(soapBody), "not implemented") {
		t.Fatalf("unimplemented op: status %d: %s", soapResp.StatusCode, soapBody)
	}

	badEnv := strings.Replace(addEnv, "<c:a>40</c:a>", "<c:a>forty</c:a>", 1)
	soapResp, err = http.Post(baseURL+"/v1/soap/Calc", "text/xml; charset=utf-8", strings.NewReader(badEnv))
	if err != nil {
		t.Fatal(err)
	}
	soapBody, _ = io.ReadAll(soapResp.Body)
	soapResp.Body.Close()
	if soapResp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(string(soapBody), "violation") {
		t.Fatalf("invalid envelope: status %d: %s", soapResp.StatusCode, soapBody)
	}

	var listing serveSchemas
	getJSON(t, baseURL+"/v1/schemas", &listing)
	if len(listing.Schemas) != 1 || listing.Schemas[0].Name != "po" || listing.Schemas[0].Version != 1 {
		t.Fatalf("schemas listing = %+v", listing)
	}

	// SIGHUP hot-reload: rewrite the schema (backward-compatible v2) and
	// watch the served version advance without restarting the process.
	poV2 := strings.Replace(schemas.PurchaseOrderXSD,
		`<xsd:element name="items" type="Items"/>`,
		`<xsd:element name="items" type="Items"/>
      <xsd:element name="priority" type="xsd:string" minOccurs="0"/>`, 1)
	if err := os.WriteFile(poPath, []byte(poV2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var l serveSchemas
		getJSON(t, baseURL+"/v1/schemas", &l)
		if len(l.Schemas) == 1 && l.Schemas[0].Version == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("schema version never reached 2 after SIGHUP: %+v", l)
		}
		time.Sleep(20 * time.Millisecond)
	}
	v = postForVerdict(t, baseURL+"/v1/validate/po", schemas.PurchaseOrderDoc)
	if !v.Valid || v.SchemaVersion != 2 {
		t.Fatalf("post-reload verdict = %+v, want valid v2", v)
	}

	// Metrics must agree with the load this test drove: 2 DOM requests
	// (one per version), 1 stream request (the invalid one), ≥1 reload.
	var snap obs.Snapshot
	getJSON(t, baseURL+"/metrics", &snap)
	got := map[string][2]int64{}
	for _, s := range snap.Series {
		got[s.Schema+"/"+s.Endpoint] = [2]int64{s.Requests, s.Invalid}
	}
	if got["po/dom"] != [2]int64{2, 0} {
		t.Errorf("po/dom series = %v, want {2 0}", got["po/dom"])
	}
	if got["po/stream"] != [2]int64{1, 1} {
		t.Errorf("po/stream series = %v, want {1 1}", got["po/stream"])
	}
	if got["po/decode-dom"] != [2]int64{3, 1} {
		t.Errorf("po/decode-dom series = %v, want {3 1}", got["po/decode-dom"])
	}
	if got["po/decode-stream"] != [2]int64{1, 0} {
		t.Errorf("po/decode-stream series = %v, want {1 0}", got["po/decode-stream"])
	}
	if got["po/encode"] != [2]int64{1, 0} {
		t.Errorf("po/encode series = %v, want {1 0}", got["po/encode"])
	}
	// Both SOAP requests dispatched to Add and faulted (unimplemented,
	// then schema-invalid), so the per-operation series meters them as
	// invalid.
	if got["soap:Calc/op:Add"] != [2]int64{2, 2} {
		t.Errorf("soap:Calc/op:Add series = %v, want {2 2}", got["soap:Calc/op:Add"])
	}
	if snap.Reloads < 1 {
		t.Errorf("reloads = %d, want >= 1", snap.Reloads)
	}
	if snap.Registry == nil || snap.Registry.Generation < 2 || snap.Registry.Schemas != 1 {
		t.Errorf("metrics registry info = %+v, want generation >= 2 with 1 schema", snap.Registry)
	}

	// SIGTERM drains gracefully: exit status 0, not a kill.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- cmd.Wait() }()
	select {
	case err := <-waitc:
		if err != nil {
			t.Fatalf("xsdserved exited non-zero after SIGTERM: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("xsdserved did not exit after SIGTERM")
	}
}
