package repro

// E12 correctness harness: the two decode paths (DOM and streaming) must
// agree byte-for-byte on the verdict, the canonical JSON and the
// marshaled XML, and decode∘marshal must be the identity modulo
// canonicalization, on every bundled schema plus wildcard coverage.

import (
	"bytes"
	"strings"
	"testing"
	"testing/iotest"

	"repro/internal/bind"
	"repro/internal/schemas"
	"repro/internal/wml"
	"repro/internal/xsd"
)

// bindAnyXSD exercises the wildcard binding paths: xs:any children that
// resolve to a global declaration, raw subtrees with no declaration, and
// attribute wildcards.
const bindAnyXSD = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="envelope">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element name="head" type="xsd:string"/>
        <xsd:any minOccurs="0" maxOccurs="unbounded" processContents="lax"/>
      </xsd:sequence>
      <xsd:anyAttribute processContents="lax"/>
    </xsd:complexType>
  </xsd:element>
  <xsd:element name="extra" type="xsd:string"/>
</xsd:schema>
`

// bindCases extends the validation differential corpus (diffCases) with
// schemas whose decode shapes matter specifically for binding.
var bindCases = []diffCase{
	{
		name:   "wml",
		xsdSrc: wml.Schema,
		instances: map[string]string{
			"mixed inline markup":       `<wml><card id="c1" title="T"><p align="left">Hello <b>bold</b> and <a href="http://example.org/" title="t">link</a> tail</p></card></wml>`,
			"select with options":       `<wml><card><p><select name="s" multiple="true"><option value="v1">One</option><option>Two</option></select></p></card></wml>`,
			"line break and empty card": `<wml><card><p>one<br/>two</p></card><card/></wml>`,
			"bad alignment":             `<wml><card><p align="diagonal">x</p></card></wml>`,
			"unknown inline element":    `<wml><card><p>text <strong>x</strong></p></card></wml>`,
		},
	},
	{
		name:   "wildcards",
		xsdSrc: bindAnyXSD,
		instances: map[string]string{
			"declared global via any": `<envelope><head>h</head><extra>e</extra></envelope>`,
			"raw undeclared subtree":  `<envelope><head>h</head><foo xmlns="urn:mystery" a="b">text<inner/><!--c--></foo></envelope>`,
			"wildcard attribute":      `<envelope loose="yes"><head>h</head></envelope>`,
			"mixed raw and declared":  `<envelope><head>h</head><extra>one</extra><bar/><extra>two</extra></envelope>`,
		},
	},
}

// decodeBoth runs one instance through both decode paths (the streaming
// path twice, once through a one-byte reader) and asserts identical
// verdicts and identical values.
func decodeBoth(t *testing.T, b *bind.Binder, label, src string) (*bind.Value, bool) {
	t.Helper()
	domVal, domRes := b.DecodeBytes([]byte(src))
	streamVal, streamRes, err := b.DecodeStreamBytes([]byte(src))
	if err != nil {
		t.Errorf("%s: stream decode error: %v", label, err)
		return nil, false
	}
	assertSameResult(t, label, domRes, streamRes)
	if (domVal == nil) != (streamVal == nil) {
		t.Errorf("%s: value presence diverged: dom=%v stream=%v", label, domVal != nil, streamVal != nil)
		return nil, false
	}
	if domVal == nil {
		if domRes.OK() {
			t.Errorf("%s: no value from a valid document", label)
		}
		return nil, false
	}
	domJSON, streamJSON := b.JSON(domVal), b.JSON(streamVal)
	if !bytes.Equal(domJSON, streamJSON) {
		t.Errorf("%s: JSON diverged:\n  dom:    %s\n  stream: %s", label, domJSON, streamJSON)
		return nil, false
	}
	readerVal, readerRes, err := b.DecodeReader(t.Context(), iotest.OneByteReader(strings.NewReader(src)))
	if err != nil || !readerRes.OK() || !bytes.Equal(b.JSON(readerVal), domJSON) {
		t.Errorf("%s: one-byte reader decode diverged (err=%v)", label, err)
	}
	return domVal, true
}

// assertRoundTrip checks decode∘marshal = id (via the canonical JSON) and
// that FromJSON inverts the JSON projection.
func assertRoundTrip(t *testing.T, b *bind.Binder, label string, v *bind.Value) {
	t.Helper()
	out, err := b.Marshal(v)
	if err != nil {
		t.Errorf("%s: marshal: %v", label, err)
		return
	}
	v2, res := b.DecodeBytes(out)
	if v2 == nil {
		t.Errorf("%s: marshaled document failed to decode: %v\n  xml: %s", label, res.Violations, out)
		return
	}
	j1, j2 := b.JSON(v), b.JSON(v2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("%s: round trip changed the value:\n  before: %s\n  after:  %s\n  xml: %s", label, j1, j2, out)
		return
	}
	v3, err := b.FromJSON(j1)
	if err != nil {
		t.Errorf("%s: FromJSON: %v\n  json: %s", label, err, j1)
		return
	}
	out3, err := b.Marshal(v3)
	if err != nil {
		t.Errorf("%s: marshal after FromJSON: %v\n  json: %s", label, err, j1)
		return
	}
	if !bytes.Equal(out, out3) {
		t.Errorf("%s: JSON round trip changed the document:\n  direct:    %s\n  via JSON:  %s", label, out, out3)
	}
}

// TestBindStreamMatchesDOM is the binding differential: every schema and
// instance from the validation differential corpus, plus WML and wildcard
// coverage, through both decode paths and the round-trip property.
func TestBindStreamMatchesDOM(t *testing.T) {
	cases := append(append([]diffCase{}, diffCases...), bindCases...)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			schema, err := xsd.ParseString(tc.xsdSrc, nil)
			if err != nil {
				t.Fatalf("schema: %v", err)
			}
			b := bind.New(schema, nil)
			for label, src := range tc.instances {
				if v, ok := decodeBoth(t, b, label, src); ok {
					assertRoundTrip(t, b, label, v)
				}
			}
		})
	}
}

// TestBindMutationCorpus replays E1's generated mutants through both
// decode paths: every mutant must produce the same verdict and, when
// valid, the same value.
func TestBindMutationCorpus(t *testing.T) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	b := bind.New(schema, nil)
	for _, m := range poMutations {
		if v, ok := decodeBoth(t, b, m.name, m.xmlOutput); ok {
			assertRoundTrip(t, b, m.name, v)
		}
	}
}

// FuzzBindRoundTrip feeds arbitrary documents to both decode paths: the
// paths must agree on verdict and value, and any accepted document must
// survive decode → marshal → decode unchanged.
func FuzzBindRoundTrip(f *testing.F) {
	schema, err := xsd.ParseString(schemas.PurchaseOrderXSD, nil)
	if err != nil {
		f.Fatalf("schema: %v", err)
	}
	b := bind.New(schema, nil)
	f.Add(schemas.PurchaseOrderDoc)
	for _, tc := range diffCases {
		if tc.xsdSrc != schemas.PurchaseOrderXSD {
			continue
		}
		for _, src := range tc.instances {
			f.Add(src)
		}
	}
	for _, m := range poMutations {
		f.Add(m.xmlOutput)
	}
	f.Fuzz(func(t *testing.T, src string) {
		domVal, domRes := b.DecodeBytes([]byte(src))
		streamVal, streamRes, err := b.DecodeStreamBytes([]byte(src))
		if err != nil {
			t.Fatalf("stream decode error: %v", err)
		}
		if domRes.OK() != streamRes.OK() {
			t.Fatalf("verdict diverged: dom=%v stream=%v", domRes.Violations, streamRes.Violations)
		}
		if (domVal == nil) != (streamVal == nil) {
			t.Fatalf("value presence diverged")
		}
		if domVal == nil {
			return
		}
		j1, j2 := b.JSON(domVal), b.JSON(streamVal)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("JSON diverged:\n  dom:    %s\n  stream: %s", j1, j2)
		}
		out, err := b.Marshal(domVal)
		if err != nil {
			t.Fatalf("marshal rejected a decoded value: %v\n  json: %s", err, j1)
		}
		v2, res := b.DecodeBytes(out)
		if v2 == nil {
			t.Fatalf("marshaled document invalid: %v\n  xml: %s", res.Violations, out)
		}
		if !bytes.Equal(j1, b.JSON(v2)) {
			t.Fatalf("round trip changed the value:\n  before: %s\n  after:  %s", j1, b.JSON(v2))
		}
	})
}
